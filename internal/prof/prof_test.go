package prof

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		raw  string
		want Spec
		err  bool
	}{
		{"", Spec{}, false},
		{"counters", Spec{Counters: true}, false},
		{"on", Spec{Counters: true}, false},
		{"1", Spec{Counters: true}, false},
		{"trace:/tmp/run", Spec{Counters: true, TracePrefix: "/tmp/run"}, false},
		{"trace:", Spec{}, true},
		{"bogus", Spec{}, true},
		{"TRACE:/tmp/run", Spec{}, true}, // case-sensitive, like the rest of the env knobs
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.raw)
		if tc.err {
			if err == nil {
				t.Errorf("ParseSpec(%q): no error", tc.raw)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.raw, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.raw, got, tc.want)
		}
		// String must round-trip so the job layer can ship specs to slaves.
		if rt, err := ParseSpec(got.String()); err != nil || rt != got {
			t.Errorf("ParseSpec(%q).String() = %q does not round-trip (%+v, %v)",
				tc.raw, got.String(), rt, err)
		}
	}
}

func TestSpecEnabled(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Error("zero spec reports enabled")
	}
	if !(Spec{Counters: true}).Enabled() || !(Spec{TracePrefix: "x"}).Enabled() {
		t.Error("non-zero spec reports disabled")
	}
	if New(0, Spec{}) != nil {
		t.Error("New with a disabled spec must return nil — the hook sites branch on it")
	}
}

func TestRecorderCounters(t *testing.T) {
	r := New(3, Spec{Counters: true})
	if r == nil {
		t.Fatal("New returned nil for an enabled spec")
	}
	if r.Rank() != 3 {
		t.Fatalf("Rank() = %d, want 3", r.Rank())
	}

	const ctxA, ctxB = 7, 9
	r.Send(ctxA, 100, true)
	r.Send(ctxA, 2000, false)
	r.Send(ctxB, 30, true)
	r.RecvPost(ctxA)
	r.Arrive(ctxA, 100, true)
	r.Arrive(ctxB, 2000, false)
	r.CollStart(ctxB, 1, "ibcast", "binomial", 0, 2)
	r.RoundStart(ctxB, 1, 0)
	r.RoundEnd(ctxB, 1, 0)
	r.CollEnd(ctxB, 1, false)
	r.CollStart(ctxB, 2, "ibcast", "", 0, 1)
	r.CollEnd(ctxB, 2, true)
	r.WaitSpan(ctxB, time.Now().Add(-time.Millisecond))

	s := r.Snapshot()
	if s.SendOps != 3 || s.RecvOps != 1 {
		t.Errorf("ops: %d sends %d recvs, want 3/1", s.SendOps, s.RecvOps)
	}
	if s.EagerSent != 2 || s.EagerSentBytes != 130 || s.RdvSent != 1 || s.RdvSentBytes != 2000 {
		t.Errorf("send split: %+v", s)
	}
	if s.EagerRecv != 1 || s.EagerRecvBytes != 100 || s.RdvRecv != 1 || s.RdvRecvBytes != 2000 {
		t.Errorf("recv split: %+v", s)
	}
	if s.CollStarted != 2 || s.CollDone != 1 || s.CollFailed != 1 || s.CollRounds != 1 {
		t.Errorf("collectives: %+v", s)
	}
	if s.WaitNs < int64(time.Millisecond) {
		t.Errorf("WaitNs = %d, want at least 1ms", s.WaitNs)
	}
	if s.SentBytes() != 2130 || s.RecvBytes() != 2100 || s.SentMsgs() != 3 || s.RecvMsgs() != 2 {
		t.Errorf("totals: sent %d/%d recv %d/%d", s.SentMsgs(), s.SentBytes(), s.RecvMsgs(), s.RecvBytes())
	}

	// The per-context slices must partition the totals.
	a, b := r.CtxSnapshot(ctxA), r.CtxSnapshot(ctxB)
	if a.SendOps != 2 || b.SendOps != 1 {
		t.Errorf("ctx send ops: A %d B %d, want 2/1", a.SendOps, b.SendOps)
	}
	if a.CollStarted != 0 || b.CollStarted != 2 {
		t.Errorf("ctx collectives: A %d B %d, want 0/2", a.CollStarted, b.CollStarted)
	}
	both := r.CtxSnapshot(ctxA, ctxB)
	if both.SendOps != s.SendOps || both.SentBytes() != s.SentBytes() {
		t.Errorf("ctx sum %+v does not cover the global %+v", both, s)
	}
	if missing := r.CtxSnapshot(42); missing != (Snapshot{}) {
		t.Errorf("unknown context snapshot is non-zero: %+v", missing)
	}
}

func TestRecorderStatus(t *testing.T) {
	r := New(0, Spec{Counters: true})
	if r.Status() != nil {
		t.Error("status before SetStatus is non-nil")
	}
	r.SetStatus(func() any { return map[string]any{"failedRanks": []int{2}} })
	st, ok := r.Status().(map[string]any)
	if !ok || st["failedRanks"] == nil {
		t.Errorf("status = %v, want the installed map", r.Status())
	}
}

// TestTrackVarsRetire exercises the endpoint registry: a tracked recorder
// appears in the per-rank block, and closing it folds its totals into the
// cumulative sum instead of dropping them. The registry is process-wide,
// so all assertions are relative deltas.
func TestTrackVarsRetire(t *testing.T) {
	asMap := func() map[string]any { return Vars().(map[string]any) }
	before := asMap()
	beforeTotal := before["total"].(Snapshot)
	beforeClosed := before["closed"].(int)

	r := New(17, Spec{Counters: true})
	Track(r)
	Track(r) // double-track must not duplicate the entry
	r.Send(5, 123, true)

	mid := asMap()
	if _, ok := mid["ranks"].(map[string]any)["17"]; !ok {
		t.Fatalf("tracked rank 17 missing from Vars: %v", mid["ranks"])
	}
	if got := mid["total"].(Snapshot).EagerSentBytes - beforeTotal.EagerSentBytes; got != 123 {
		t.Errorf("live total moved by %d bytes, want 123", got)
	}

	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	after := asMap()
	if _, ok := after["ranks"].(map[string]any)["17"]; ok {
		t.Error("closed rank 17 still listed as live")
	}
	if got := after["closed"].(int) - beforeClosed; got != 1 {
		t.Errorf("closed count moved by %d, want 1", got)
	}
	if got := after["total"].(Snapshot).EagerSentBytes - beforeTotal.EagerSentBytes; got != 123 {
		t.Errorf("retired total moved by %d bytes, want 123 — retirement dropped the counters", got)
	}
}

// TestServeEndpoint starts the expvar server and checks the "mpj" block
// is served as JSON on /debug/vars, and that a second Serve on the same
// requested address reuses the first listener.
func TestServeEndpoint(t *testing.T) {
	PublishMPJ()
	r := New(23, Spec{Counters: true})
	Track(r)
	defer r.Close()
	r.Send(1, 77, true)

	bound, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	again, err := Serve("127.0.0.1:0")
	if err != nil || again != bound {
		t.Fatalf("second Serve = %q, %v; want the first server %q back", again, err, bound)
	}

	resp, err := http.Get("http://" + bound + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	var vars struct {
		MPJ struct {
			Ranks  map[string]json.RawMessage `json:"ranks"`
			Total  Snapshot                   `json:"total"`
			Closed int                        `json:"closed"`
		} `json:"mpj"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if _, ok := vars.MPJ.Ranks["23"]; !ok {
		t.Errorf("rank 23 missing from the served mpj block: %s", body)
	}
	if vars.MPJ.Total.EagerSentBytes < 77 {
		t.Errorf("served total %d bytes, want at least 77", vars.MPJ.Total.EagerSentBytes)
	}
}

// TestTraceFlush drives the schedule hooks on a tracing recorder and
// validates the flushed file: metadata plus time-sorted complete events
// carrying the algorithm and round metadata.
func TestTraceFlush(t *testing.T) {
	prefix := t.TempDir() + "/run"
	r := New(2, Spec{Counters: true, TracePrefix: prefix})

	r.CollStart(4, 11, "iallreduce", "recursive-doubling", 0, 2)
	r.RoundStart(4, 11, 0)
	r.RoundEnd(4, 11, 0)
	r.RoundStart(4, 11, 1)
	r.RoundEnd(4, 11, 1)
	r.WaitSpan(4, time.Now())
	r.CollEnd(4, 11, false)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	raw, err := os.ReadFile(TracePath(prefix, 2))
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	var sawColl, sawRounds, sawWait bool
	lastTS := -1.0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
			if ev.PID != 2 {
				t.Errorf("event %q: pid %d, want 2", ev.Name, ev.PID)
			}
			if ev.TS < lastTS {
				t.Errorf("event %q out of ts order", ev.Name)
			}
			lastTS = ev.TS
			switch ev.TID {
			case laneColl:
				sawColl = true
				if ev.Name != "iallreduce:recursive-doubling" {
					t.Errorf("collective span named %q", ev.Name)
				}
				if ev.Args["alg"] != "recursive-doubling" || ev.Args["rounds"] != 2.0 {
					t.Errorf("collective span args %v", ev.Args)
				}
			case laneRound:
				sawRounds = true
			case laneWait:
				sawWait = true
			default:
				t.Errorf("event %q on unknown lane %d", ev.Name, ev.TID)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if !sawColl || !sawRounds || !sawWait {
		t.Errorf("missing lanes: coll %v rounds %v wait %v", sawColl, sawRounds, sawWait)
	}
}
