package prof

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"strconv"
	"sync"
)

// This file implements the expvar/HTTP surface behind MPJ_PROF_ADDR and
// mpjd -prof-addr: recorders register in a process-wide registry, the
// "mpj" expvar block serves their per-rank counters (plus whatever
// status each recorder exposes — failed ranks, failure epochs), and
// Serve starts a plain net/http server whose /debug/vars endpoint is the
// standard expvar handler. Everything is stdlib.
//
// Closed recorders leave the per-rank listing but their totals fold into
// a retired sum, so the endpoint's cumulative block survives job
// completion — a curl after the run still sees the traffic.

// reg is the process-wide recorder registry.
var reg struct {
	mu      sync.Mutex
	live    []*Recorder
	retired Snapshot
	closed  int // recorders folded into retired
}

// Track registers a recorder with the expvar surface. The runtime calls
// it for every recorder it creates; Recorder.Close retires it.
func Track(r *Recorder) {
	if r == nil {
		return
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, x := range reg.live {
		if x == r {
			return
		}
	}
	reg.live = append(reg.live, r)
}

// untrack folds a closing recorder's totals into the retired sum.
func untrack(r *Recorder) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for i, x := range reg.live {
		if x == r {
			reg.live = append(reg.live[:i], reg.live[i+1:]...)
			reg.retired.add(r.Snapshot())
			reg.closed++
			return
		}
	}
}

// Vars builds the value of the "mpj" expvar block: per-live-rank counter
// snapshots and status, plus the cumulative total including retired
// recorders.
func Vars() any {
	reg.mu.Lock()
	live := append([]*Recorder(nil), reg.live...)
	total := reg.retired
	closed := reg.closed
	reg.mu.Unlock()

	ranks := make(map[string]any, len(live))
	for _, r := range live {
		s := r.Snapshot()
		total.add(s)
		entry := map[string]any{"counters": s}
		if st := r.Status(); st != nil {
			entry["status"] = st
		}
		ranks[strconv.Itoa(r.rank)] = entry
	}
	return map[string]any{
		"ranks":  ranks,
		"total":  total,
		"closed": closed,
	}
}

// pubVar is a replaceable expvar.Var: expvar.Publish panics on duplicate
// names, but the runtime re-publishes on every job start (benchmarks run
// many), so Publish swaps the function under an existing name instead.
type pubVar struct {
	mu sync.Mutex
	f  func() any
}

func (v *pubVar) String() string {
	v.mu.Lock()
	f := v.f
	v.mu.Unlock()
	js, err := json.Marshal(f())
	if err != nil {
		return `"prof: ` + err.Error() + `"`
	}
	return string(js)
}

var pub = struct {
	mu sync.Mutex
	m  map[string]*pubVar
}{m: make(map[string]*pubVar)}

// Publish exposes f's value under name on the expvar endpoint,
// replacing any function previously published under that name.
func Publish(name string, f func() any) {
	pub.mu.Lock()
	defer pub.mu.Unlock()
	if v, ok := pub.m[name]; ok {
		v.mu.Lock()
		v.f = f
		v.mu.Unlock()
		return
	}
	v := &pubVar{f: f}
	pub.m[name] = v
	expvar.Publish(name, v)
}

// PublishMPJ publishes the "mpj" counter block (see Vars). Idempotent.
func PublishMPJ() { Publish("mpj", Vars) }

// servers tracks listeners already serving, keyed by requested address,
// so repeated Serve calls (one per RunLocal in a benchmark loop) reuse
// the first listener instead of failing on the occupied port.
var servers = struct {
	mu sync.Mutex
	m  map[string]string // requested addr → bound addr
}{m: make(map[string]string)}

// Serve starts an HTTP server on addr whose /debug/vars endpoint is the
// standard expvar handler, and returns the bound address. A second call
// with the same addr returns the existing server's address. The server
// runs until the process exits — the endpoint outlives jobs on purpose.
func Serve(addr string) (string, error) {
	servers.mu.Lock()
	defer servers.mu.Unlock()
	if bound, ok := servers.m[addr]; ok {
		return bound, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		// DefaultServeMux carries expvar's /debug/vars handler.
		_ = http.Serve(ln, nil)
	}()
	bound := ln.Addr().String()
	servers.m[addr] = bound
	return bound, nil
}
