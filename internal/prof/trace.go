package prof

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// This file implements the Chrome trace_event timeline writer behind
// MPJ_PROF=trace:<prefix>. Each rank buffers complete ("X") events in
// memory and writes one JSON file — <prefix>.rank<N>.trace.json — when
// its device closes; the files load directly in chrome://tracing or
// Perfetto (https://ui.perfetto.dev), one process track per rank.
//
// Only "X" (complete) events are emitted: schedules on different
// communicators overlap freely, and begin/end pairs would force Chrome's
// strict stack nesting onto a DAG that has none. Each span is recorded
// at its end, when both endpoints are known, and the buffer is sorted by
// start timestamp at flush — the order the format expects.

// Trace lane (tid) assignment within a rank's process track.
const (
	laneColl  = 1 // whole-collective spans
	laneRound = 2 // per-round spans
	laneWait  = 3 // WaitProgress parks
	laneRma   = 4 // one-sided epoch spans (fence-to-fence, lock-to-unlock)
)

// traceEvent is one trace_event entry in Chrome's JSON schema.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds from trace origin
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level JSON object of a trace file.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// collKey identifies an in-flight schedule: every compiled collective
// gets a fresh tag on its communicator's collective context, so the pair
// is unique among concurrently open spans.
type collKey struct{ ctx, tag int }

// openColl is a schedule whose end has not been seen yet.
type openColl struct {
	start      time.Time
	roundStart time.Time // rounds are sequential per schedule
	name, alg  string
	nseg       int
	rounds     int
}

// tracer buffers the events of one rank. All methods take tr.mu: tracing
// is the explicitly-requested expensive mode, counters stay lock-free.
type tracer struct {
	rank   int
	prefix string
	origin time.Time

	mu     sync.Mutex
	open   map[collKey]*openColl
	events []traceEvent
}

func newTracer(rank int, prefix string) *tracer {
	return &tracer{
		rank:   rank,
		prefix: prefix,
		origin: time.Now(),
		open:   make(map[collKey]*openColl),
	}
}

// ts converts an absolute time to trace microseconds.
func (tr *tracer) ts(t time.Time) float64 {
	return float64(t.Sub(tr.origin)) / float64(time.Microsecond)
}

func (tr *tracer) collStart(ctx, tag int, name, alg string, nseg, rounds int) {
	tr.mu.Lock()
	tr.open[collKey{ctx, tag}] = &openColl{
		start: time.Now(), name: name, alg: alg, nseg: nseg, rounds: rounds,
	}
	tr.mu.Unlock()
}

func (tr *tracer) roundStart(ctx, tag, round int) {
	tr.mu.Lock()
	if oc := tr.open[collKey{ctx, tag}]; oc != nil {
		oc.roundStart = time.Now()
	}
	tr.mu.Unlock()
}

func (tr *tracer) roundEnd(ctx, tag, round int) {
	now := time.Now()
	tr.mu.Lock()
	if oc := tr.open[collKey{ctx, tag}]; oc != nil && !oc.roundStart.IsZero() {
		tr.events = append(tr.events, traceEvent{
			Name: fmt.Sprintf("%s r%d", oc.name, round),
			Ph:   "X",
			TS:   tr.ts(oc.roundStart),
			Dur:  float64(now.Sub(oc.roundStart)) / float64(time.Microsecond),
			PID:  tr.rank,
			TID:  laneRound,
			Args: map[string]any{"tag": tag, "round": round},
		})
	}
	tr.mu.Unlock()
}

func (tr *tracer) collEnd(ctx, tag int, failed bool) {
	now := time.Now()
	key := collKey{ctx, tag}
	tr.mu.Lock()
	if oc := tr.open[key]; oc != nil {
		delete(tr.open, key)
		name := oc.name
		if oc.alg != "" {
			name += ":" + oc.alg
		}
		args := map[string]any{
			"tag": tag, "ctx": ctx, "rounds": oc.rounds,
		}
		if oc.alg != "" {
			args["alg"] = oc.alg
		}
		if oc.nseg > 0 {
			args["nseg"] = oc.nseg
		}
		if failed {
			args["failed"] = true
		}
		tr.events = append(tr.events, traceEvent{
			Name: name,
			Ph:   "X",
			TS:   tr.ts(oc.start),
			Dur:  float64(now.Sub(oc.start)) / float64(time.Microsecond),
			PID:  tr.rank,
			TID:  laneColl,
			Args: args,
		})
	}
	tr.mu.Unlock()
}

func (tr *tracer) waitSpan(start time.Time, d time.Duration) {
	tr.mu.Lock()
	tr.events = append(tr.events, traceEvent{
		Name: "wait",
		Ph:   "X",
		TS:   tr.ts(start),
		Dur:  float64(d) / float64(time.Microsecond),
		PID:  tr.rank,
		TID:  laneWait,
	})
	tr.mu.Unlock()
}

func (tr *tracer) rmaEpoch(ctx int, name string, start time.Time, d time.Duration) {
	tr.mu.Lock()
	tr.events = append(tr.events, traceEvent{
		Name: name,
		Ph:   "X",
		TS:   tr.ts(start),
		Dur:  float64(d) / float64(time.Microsecond),
		PID:  tr.rank,
		TID:  laneRma,
		Args: map[string]any{"ctx": ctx},
	})
	tr.mu.Unlock()
}

// flush sorts the buffered events by start time and writes the rank's
// trace file. Called once, from Recorder.Close.
func (tr *tracer) flush() error {
	tr.mu.Lock()
	events := tr.events
	tr.events = nil
	tr.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })

	// Process/thread name metadata first — Perfetto labels the tracks.
	meta := []traceEvent{
		{Name: "process_name", Ph: "M", PID: tr.rank,
			Args: map[string]any{"name": fmt.Sprintf("mpj rank %d", tr.rank)}},
		{Name: "thread_name", Ph: "M", PID: tr.rank, TID: laneColl,
			Args: map[string]any{"name": "collectives"}},
		{Name: "thread_name", Ph: "M", PID: tr.rank, TID: laneRound,
			Args: map[string]any{"name": "rounds"}},
		{Name: "thread_name", Ph: "M", PID: tr.rank, TID: laneWait,
			Args: map[string]any{"name": "waits"}},
		{Name: "thread_name", Ph: "M", PID: tr.rank, TID: laneRma,
			Args: map[string]any{"name": "rma epochs"}},
	}
	out := traceFile{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
	}
	js, err := json.Marshal(&out)
	if err != nil {
		return fmt.Errorf("prof: encoding trace for rank %d: %w", tr.rank, err)
	}
	path := TracePath(tr.prefix, tr.rank)
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("prof: creating trace directory: %w", err)
		}
	}
	if err := os.WriteFile(path, js, 0o644); err != nil {
		return fmt.Errorf("prof: writing trace for rank %d: %w", tr.rank, err)
	}
	return nil
}

// TracePath returns the trace file path for rank under prefix — the name
// Recorder.Close writes and tools should glob for.
func TracePath(prefix string, rank int) string {
	return fmt.Sprintf("%s.rank%d.trace.json", prefix, rank)
}
