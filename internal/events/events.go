// Package events implements the distributed-event mechanism of the
// paper's §3.3: Jini remote events carried over RPC. The key event type
// is the MPJAbort event — raised when any slave of a job dies — whose
// delivery causes every remaining slave of that job to be destroyed,
// converting partial failure into clean total failure.
//
// See ARCHITECTURE.md at the repository root for where this package sits in
// the layer stack.
package events

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"
)

// Event types used by the MPJ runtime.
const (
	// TypeAbort is the MPJAbort event: a slave of the job has failed and
	// the whole job must be torn down.
	TypeAbort = "MPJAbort"
	// TypeJobDone announces orderly completion of a job.
	TypeJobDone = "MPJJobDone"
)

// Event is the remote event record (the RemoteEvent analogue).
type Event struct {
	Type    string // one of the Type* constants
	JobID   uint64 // the job the event concerns
	Source  string // originator description, e.g. "daemon host:port"
	Seq     uint64 // originator-local sequence number
	Message string // human-readable detail
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%s(job=%d from=%s: %s)", e.Type, e.JobID, e.Source, e.Message)
}

// listener is the RPC service receiving notifications.
type listener struct {
	handler func(Event)
}

// Notify delivers one event; it is the remote surface of the receiver.
func (l *listener) Notify(ev Event, _ *struct{}) error {
	l.handler(ev)
	return nil
}

// Receiver accepts remote events on a local TCP endpoint. The handler is
// invoked on RPC server goroutines; it must be safe for concurrent use.
type Receiver struct {
	ln   net.Listener
	addr string

	mu     sync.Mutex
	closed bool
}

// NewReceiver starts an event receiver on an ephemeral localhost port.
func NewReceiver(handler func(Event)) (*Receiver, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("events: %w", err)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("EventListener", &listener{handler: handler}); err != nil {
		ln.Close()
		return nil, fmt.Errorf("events: %w", err)
	}
	r := &Receiver{ln: ln, addr: ln.Addr().String()}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	return r, nil
}

// Addr returns the receiver's dialable address.
func (r *Receiver) Addr() string { return r.addr }

// Close stops accepting events.
func (r *Receiver) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.closed {
		r.closed = true
		r.ln.Close()
	}
}

// Notify delivers ev to the receiver at addr. It dials per call: event
// traffic is rare (aborts, job completion) so connection reuse is not
// worth the bookkeeping.
func Notify(addr string, ev Event) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("events: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	client := rpc.NewClient(conn)
	defer client.Close()
	if err := client.Call("EventListener.Notify", ev, &struct{}{}); err != nil {
		return fmt.Errorf("events: notifying %s: %w", addr, err)
	}
	return nil
}
