package events

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNotifyDelivers(t *testing.T) {
	got := make(chan Event, 1)
	r, err := NewReceiver(func(ev Event) { got <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	want := Event{Type: TypeAbort, JobID: 3, Source: "d1", Seq: 9, Message: "boom"}
	if err := Notify(r.Addr(), want); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-got:
		if ev != want {
			t.Errorf("got %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event")
	}
}

func TestConcurrentNotifiers(t *testing.T) {
	var mu sync.Mutex
	seen := map[uint64]bool{}
	r, err := NewReceiver(func(ev Event) {
		mu.Lock()
		seen[ev.Seq] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const n = 20
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = Notify(r.Addr(), Event{Type: TypeJobDone, Seq: uint64(i)})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("notify %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n0 := len(seen)
		mu.Unlock()
		if n0 == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d events delivered", n0, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNotifyAfterClose(t *testing.T) {
	r, err := NewReceiver(func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if err := Notify(r.Addr(), Event{Type: TypeAbort}); err == nil {
		t.Error("notify to closed receiver succeeded")
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Type: TypeAbort, JobID: 5, Source: "daemon x", Message: "slave died"}
	s := ev.String()
	for _, want := range []string{"MPJAbort", "job=5", "daemon x", "slave died"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
