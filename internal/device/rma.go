// One-sided (RMA) support at the device boundary.
//
// RMA frames (wire.Kind.IsRMA) never enter the matching engine: there is
// no user-posted receive on the target side. Instead the window layer
// (internal/core/win.go) installs a single dispatcher per device with
// SetRMAHandler, and the device invokes it synchronously from the
// transport's reader goroutine. The dispatcher must therefore never block
// on communication — the window layer serializes on the window mutex and
// collects outbound replies to send after releasing it.
//
// Outbound RMA traffic goes through RMASend/RMASendFill rather than Isend:
// one-sided frames carry no envelope to match and must not perturb the
// eager/rendezvous statistics or per-path sequence numbers used by the
// two-sided diagnostics.
package device

import (
	"mpj/internal/transport"
	"mpj/internal/wire"
)

// localRouter is implemented by transports that can route to some peers
// within this process's address space (chan: all peers; hyb: co-located
// peers). The device treats transports without it as fully remote.
type localRouter interface{ Local(dst int) bool }

// LocalPeer reports whether world rank dst shares this process's address
// space, meaning one-sided operations can move bytes directly instead of
// through the wire. The device's own rank is always local.
func (d *Device) LocalPeer(dst int) bool {
	if dst == d.rank {
		return true
	}
	if lr, ok := d.t.(localRouter); ok {
		return lr.Local(dst)
	}
	return false
}

// SetRMAHandler installs the dispatcher for inbound one-sided frames. f
// runs synchronously on the transport reader goroutine, outside the device
// lock; the payload slice aliases the frame and is recycled when f
// returns, so f must copy anything it keeps. A nil f drops RMA frames.
func (d *Device) SetRMAHandler(f func(src int, h *wire.Header, payload []byte)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onRMA = f
}

// AddFailureWatcher registers f to run (outside the device lock) after
// every newly detected rank failure, in addition to the Open-time failure
// handler. The window layer uses it to wake epoch-close waiters parked on
// a dead peer's synchronization frame.
func (d *Device) AddFailureWatcher(f func(rank int, err error)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWatchers = append(d.failWatchers, f)
}

// RMASend sends one one-sided frame to world rank dst. The header fields
// are reused per kind (see the wire.Kind doc comments): seq carries byte
// offsets or fence generations, id ties Get requests to their replies,
// tag carries lock modes, operation ids or requested lengths. payload may
// be nil for control frames.
func (d *Device) RMASend(dst int, kind wire.Kind, ctx, tag int, seq, id uint64, payload []byte) error {
	fill := func(p []byte) error { copy(p, payload); return nil }
	if payload == nil {
		fill = nil
	}
	return d.RMASendFill(len(payload), fill, dst, kind, ctx, tag, seq, id)
}

// RMASendFill is RMASend with the payload produced directly into the
// pooled frame by fill — the zero-staging path for Put/Accumulate of
// raw-layout slices (one pack, no intermediate buffer).
func (d *Device) RMASendFill(n int, fill func(payload []byte) error, dst int, kind wire.Kind, ctx, tag int, seq, id uint64) error {
	if dst < 0 || dst >= d.size {
		return transport.ErrBadRank
	}
	d.mu.Lock()
	if err := d.usable(); err != nil {
		d.mu.Unlock()
		return err
	}
	if err := d.deadPeerLocked(dst); err != nil {
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()

	frame := wire.GetBuf(wire.HeaderLen + n)
	if fill != nil {
		if err := fill(frame[wire.HeaderLen:]); err != nil {
			wire.PutBuf(frame)
			return err
		}
	}
	h := wire.Header{
		Kind:    kind,
		Src:     int32(d.rank),
		Tag:     int32(tag),
		Context: int32(ctx),
		Seq:     seq,
		MsgID:   id,
		Len:     int32(n),
	}
	_ = h.Encode(frame) // cannot fail: frame is long enough by construction
	return d.t.Send(dst, frame)
}
