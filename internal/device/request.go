package device

import (
	"fmt"

	"mpj/internal/wire"
)

// Status describes a completed (or cancelled) communication, mirroring
// MPI_Status at the device level: byte counts, not element counts.
type Status struct {
	Source    int  // rank the message came from (sends: own rank)
	Tag       int  // message tag
	Count     int  // payload bytes transferred
	Cancelled bool // the operation was cancelled before matching
}

// reqKind distinguishes send and receive requests.
type reqKind uint8

const (
	reqSend reqKind = iota
	reqRecv
)

// Request is a handle on an in-flight device operation, the device-level
// analogue of MPI_Request. Requests are created by Isend/Irecv and
// completed by the protocol engine; user goroutines observe completion via
// Wait/Test or the device's WaitAny/WaitAll/TestAny/TestAll.
type Request struct {
	d    *Device
	kind reqKind

	// Receive matching parameters (src/tag may be wildcards).
	buf     []byte
	dynamic bool // allocate-on-arrival receive (posted with nil buf)
	src     int
	tag     int
	ctx     int
	dst     int // sends only
	done    bool
	err     error

	status Status

	// Rendezvous state.
	msgID      uint64
	payload    []byte // sender: stashed payload awaiting CTS
	count      int    // sender: payload length for the final status
	matchedSrc int    // receiver: resolved source after matching an RTS
	matchedTag int    // receiver: resolved tag after matching an RTS
	expect     int    // receiver: expected DATA length

	cancelWanted bool
	consumed     bool // a WaitAny/TestAny already returned this request
}

// Wait blocks until the request completes and returns its status.
func (r *Request) Wait() (Status, error) {
	d := r.d
	d.mu.Lock()
	defer d.mu.Unlock()
	for !r.done {
		d.cond.Wait()
	}
	return r.status, r.err
}

// Test reports, without blocking, whether the request has completed.
func (r *Request) Test() (Status, bool, error) {
	d := r.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if !r.done {
		return Status{}, false, nil
	}
	return r.status, true, r.err
}

// Done reports whether the request has completed.
func (r *Request) Done() bool {
	r.d.mu.Lock()
	defer r.d.mu.Unlock()
	return r.done
}

// IsSend reports whether this is a send request.
func (r *Request) IsSend() bool { return r.kind == reqSend }

// Data returns the received payload of a completed allocate-on-arrival
// receive (one posted with a nil buffer). It returns nil for sends and for
// receives into caller-owned buffers.
//
// The returned slice is adopted from the arrived frame (zero copy) and
// belongs to the caller outright: the device deliberately leaves such
// frames out of the wire frame pool, so the slice stays valid forever.
func (r *Request) Data() []byte {
	r.d.mu.Lock()
	defer r.d.mu.Unlock()
	if r.kind != reqRecv || !r.done || !r.dynamic {
		return nil
	}
	return r.buf
}

// Cancel attempts to cancel the request.
//
// Receives cancel locally if still unmatched. Rendezvous sends run the
// two-phase cancel handshake with the receiver; whether cancellation won
// the race is visible as Status.Cancelled once the request completes.
// Already-complete requests (including all eager sends) cannot be
// cancelled; Cancel is then a no-op, as in MPI.
func (r *Request) Cancel() error {
	d := r.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if r.done || r.cancelWanted {
		return nil
	}
	switch r.kind {
	case reqRecv:
		// Unmatched if still in the posted queue.
		for i, p := range d.posted {
			if p == r {
				d.posted = append(d.posted[:i], d.posted[i+1:]...)
				r.cancelWanted = true
				d.completeLocked(r, Status{Cancelled: true}, nil)
				return nil
			}
		}
		// Matched (awaiting rendezvous data): too late to cancel.
		return nil
	case reqSend:
		if _, pending := d.pendingRTS[r.msgID]; !pending {
			return nil // CTS already consumed: delivery has won
		}
		r.cancelWanted = true
		return d.sendCancelLocked(r)
	}
	return nil
}

// String renders the request for diagnostics.
func (r *Request) String() string {
	kind := "send"
	if r.kind == reqRecv {
		kind = "recv"
	}
	return fmt.Sprintf("Request{%s tag=%d ctx=%d done=%v}", kind, r.tag, r.ctx, r.done)
}

// WaitAny blocks until at least one of reqs completes and returns its
// index and status. Completed requests are marked consumed so repeated
// WaitAny calls step through a request slice the way MPI_Waitany does.
// Nil entries are ignored; if every entry is nil or already consumed,
// WaitAny returns index -1 with an empty status.
func (d *Device) WaitAny(reqs []*Request) (int, Status, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		active := false
		for i, r := range reqs {
			if r == nil || r.consumed {
				continue
			}
			active = true
			if r.done {
				r.consumed = true
				return i, r.status, r.err
			}
		}
		if !active {
			return -1, Status{}, nil
		}
		d.cond.Wait()
	}
}

// TestAny is the non-blocking WaitAny. Like MPI_Testany: ok is true when
// some request completed (idx is its index) or when there are no active
// requests left (idx -1); ok is false when active requests exist but none
// has completed yet.
func (d *Device) TestAny(reqs []*Request) (idx int, st Status, ok bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	anyActive := false
	for i, r := range reqs {
		if r == nil || r.consumed {
			continue
		}
		anyActive = true
		if r.done {
			r.consumed = true
			return i, r.status, true, r.err
		}
	}
	if !anyActive {
		return -1, Status{}, true, nil
	}
	return -1, Status{}, false, nil
}

// WaitProgress blocks until at least one of the requests that is
// incomplete on entry completes, or until a new rank failure is detected;
// it returns immediately when none are incomplete. Unlike WaitAny it never
// marks requests consumed — it is the parking primitive of the collective
// schedule engine, which re-derives what to do from schedule state after
// every wakeup. The failure wakeup matters for fault tolerance: a rank
// death may doom a parked schedule without completing any of its watched
// requests (a round not yet posted against the dead peer), and the waiter
// must wake to observe it.
func (d *Device) WaitProgress(reqs []*Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	epoch := d.failEpoch
	var watch []*Request
	for _, r := range reqs {
		if r != nil && !r.done {
			watch = append(watch, r)
		}
	}
	if len(watch) == 0 {
		return
	}
	for {
		if d.failEpoch != epoch || d.closed {
			return
		}
		for _, r := range watch {
			if r.done {
				return
			}
		}
		d.cond.Wait()
	}
}

// WaitAll blocks until every non-nil request completes. It returns one
// status per input slot (zero Status for nil entries) and the first error
// encountered in request order.
func (d *Device) WaitAll(reqs []*Request) ([]Status, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sts := make([]Status, len(reqs))
	var firstErr error
	for i, r := range reqs {
		if r == nil {
			continue
		}
		for !r.done {
			d.cond.Wait()
		}
		sts[i] = r.status
		if firstErr == nil && r.err != nil {
			firstErr = r.err
		}
	}
	return sts, firstErr
}

// TestAll reports whether every non-nil request has completed, returning
// statuses only when all are done (like MPI_Testall).
func (d *Device) TestAll(reqs []*Request) ([]Status, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range reqs {
		if r != nil && !r.done {
			return nil, false, nil
		}
	}
	sts := make([]Status, len(reqs))
	var firstErr error
	for i, r := range reqs {
		if r == nil {
			continue
		}
		sts[i] = r.status
		if firstErr == nil && r.err != nil {
			firstErr = r.err
		}
	}
	return sts, true, firstErr
}

// sendCancelLocked emits the KindCancel frame for a pending rendezvous
// send. Callers hold d.mu.
func (d *Device) sendCancelLocked(r *Request) error {
	h := wire.Header{
		Kind:    wire.KindCancel,
		Src:     int32(d.rank),
		Tag:     int32(r.tag),
		Context: int32(r.ctx),
		MsgID:   r.msgID,
	}
	return d.t.Send(r.dst, wire.NewFrame(&h, nil))
}
