// Obituary frames: out-of-band death notices at the device boundary.
//
// Transport-level breaks (a reset connection) already feed the failure
// registry through the transport error handler, but a death detected by
// the control plane — a liveness lease expiring at a daemon, a slave
// process observed exiting — reaches surviving processes as a KindObit
// frame instead: Tag carries the dead world rank, the payload a
// human-readable cause. Receiving an obit is equivalent to a local
// detection (NotifyRankFailed), and NotifyRankFailed's idempotence makes
// duplicate obits from several reporters harmless, so the runtime layer
// may gossip a death it learned from its daemon to every mesh peer
// without any suppression protocol.
package device

import (
	"fmt"

	"mpj/internal/wire"
)

// ObitError is the detection-level cause recorded for a rank failure
// learned from an obit frame or a daemon liveness verdict; Reporter is
// the world rank (or -1 for the control plane) the verdict came from.
type ObitError struct {
	Reporter int
	Cause    string
}

// Error renders the obituary.
func (e *ObitError) Error() string {
	if e.Reporter < 0 {
		return fmt.Sprintf("liveness verdict: %s", e.Cause)
	}
	return fmt.Sprintf("obit from rank %d: %s", e.Reporter, e.Cause)
}

// SendObit ships one death notice for world rank dead (with a
// human-readable cause) to world rank dst, best-effort.
func (d *Device) SendObit(dst, dead int, cause string) error {
	if dst < 0 || dst >= d.size {
		return fmt.Errorf("device: obit to rank %d of %d: invalid rank", dst, d.size)
	}
	h := wire.Header{
		Kind: wire.KindObit,
		Src:  int32(d.rank),
		Tag:  int32(dead),
		Len:  int32(len(cause)),
	}
	return d.t.Send(dst, wire.NewFrame(&h, []byte(cause)))
}

// BroadcastObit registers world rank dead as failed locally and gossips
// the obit, best-effort, to every other rank not already known dead. The
// runtime calls it when its daemon reports a liveness verdict, so the
// death spreads across the mesh within one heartbeat interval even when
// no transport connection to the dead rank ever existed.
func (d *Device) BroadcastObit(dead int, cause string) {
	d.NotifyRankFailed(dead, &ObitError{Reporter: -1, Cause: cause})
	for r := 0; r < d.size; r++ {
		if r == d.rank || r == dead {
			continue
		}
		d.mu.Lock()
		_, gone := d.dead[r]
		d.mu.Unlock()
		if gone {
			continue
		}
		_ = d.SendObit(r, dead, cause)
	}
}
