package device

import (
	"mpj/internal/wire"
)

// This file implements the device half of the fault-tolerant agreement
// protocol behind Comm.Agree and Comm.Shrink (see core's ft.go for the
// coordinator algorithm and ARCHITECTURE.md, "Fault tolerance").
//
// An agreement instance is identified by (ctx, seq): the communicator's
// collective context and a per-communicator sequence number every member
// derives identically (agreement calls are collective and ordered, like
// every other collective). The protocol is coordinator-pull:
//
//   - every member registers its contribution locally (FTRegister);
//   - the lowest-ranked live member coordinates: it pulls each member's
//     contribution (KindFTPull → KindFTReply), folds them, and broadcasts
//     the decision (KindFTDecide);
//   - members await the decision; if the coordinator dies first, the next
//     live member in group order takes over.
//
// Uniformity leans on two properties. First, the failure detector is
// accurate (ranks are only marked dead when their process really died), so
// two live coordinators never run concurrently. Second, all pull traffic
// is answered here, on transport reader goroutines, from the instance
// state — so a member that already adopted a decision (and whose
// application thread has long returned from Agree) still forwards that
// decision to a late coordinator's pull instead of contributing afresh. A
// takeover coordinator pulls every live member before deciding, so any
// surviving holder of an earlier decision forces adoption rather than a
// second, different decision.
//
// Instances are retained until the communicator layer calls FTForget (at
// Comm.Free): a decided member must keep answering stragglers' pulls for
// as long as the communicator lives.

// ftKey identifies an agreement instance.
type ftKey struct {
	ctx int // communicator collective context
	seq int // per-communicator agreement sequence number
}

// ftInst is the local state of one agreement instance.
type ftInst struct {
	registered bool
	contrib    []byte // local contribution (valid once registered)

	decided  bool
	decision []byte

	replies map[int][]byte // coordinator side: world rank → contribution
	pulls   []int          // pulls that arrived before registration
}

// ftInstLocked returns (creating if needed) the instance for key. Callers
// hold d.mu.
func (d *Device) ftInstLocked(key ftKey) *ftInst {
	inst := d.ft[key]
	if inst == nil {
		inst = &ftInst{}
		d.ft[key] = inst
	}
	return inst
}

// sendFTLocked emits one agreement frame. Transport sends never block, so
// issuing them under d.mu is safe (as the protocol engine does for CTS);
// send errors are ignored — a dead destination is detected separately.
func (d *Device) sendFTLocked(dst int, kind wire.Kind, key ftKey, payload []byte) {
	h := wire.Header{
		Kind:    kind,
		Src:     int32(d.rank),
		Tag:     int32(key.seq),
		Context: int32(key.ctx),
		Len:     int32(len(payload)),
	}
	_ = d.t.Send(dst, wire.NewFrame(&h, payload))
}

// handleFTLocked processes an inbound agreement frame. It runs on
// transport reader goroutines under d.mu and never blocks — which is what
// keeps decided or departed members responsive to takeover coordinators.
// The frame's payload is copied out; the caller recycles the frame.
func (d *Device) handleFTLocked(src int, h *wire.Header, payload []byte) {
	key := ftKey{ctx: int(h.Context), seq: int(h.Tag)}
	inst := d.ftInstLocked(key)
	switch h.Kind {
	case wire.KindFTPull:
		switch {
		case inst.decided:
			d.sendFTLocked(src, wire.KindFTDecide, key, inst.decision)
		case inst.registered:
			d.sendFTLocked(src, wire.KindFTReply, key, inst.contrib)
		default:
			inst.pulls = append(inst.pulls, src)
		}

	case wire.KindFTReply:
		if inst.replies == nil {
			inst.replies = make(map[int][]byte)
		}
		inst.replies[src] = append([]byte(nil), payload...)
		d.cond.Broadcast()

	case wire.KindFTDecide:
		if !inst.decided {
			inst.decided = true
			inst.decision = append([]byte(nil), payload...)
			for _, p := range inst.pulls {
				d.sendFTLocked(p, wire.KindFTDecide, key, inst.decision)
			}
			inst.pulls = nil
		}
		d.cond.Broadcast()
	}
}

// FTRegister records this rank's contribution to agreement instance
// (ctx, seq) and answers any pulls that arrived early. Idempotent: a
// second registration for the same instance is ignored.
func (d *Device) FTRegister(ctx, seq int, contrib []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := ftKey{ctx: ctx, seq: seq}
	inst := d.ftInstLocked(key)
	if inst.registered {
		return
	}
	inst.registered = true
	inst.contrib = append([]byte(nil), contrib...)
	for _, p := range inst.pulls {
		if inst.decided {
			d.sendFTLocked(p, wire.KindFTDecide, key, inst.decision)
		} else {
			d.sendFTLocked(p, wire.KindFTReply, key, inst.contrib)
		}
	}
	inst.pulls = nil
	d.cond.Broadcast()
}

// FTPull asks world rank from for its contribution to instance (ctx, seq).
// The coordinator calls it, then parks in FTAwaitReply.
func (d *Device) FTPull(from, ctx, seq int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sendFTLocked(from, wire.KindFTPull, ftKey{ctx: ctx, seq: seq}, nil)
}

// FTAwaitReply blocks until world rank from answers the coordinator's pull
// on instance (ctx, seq). Exactly one of the outcomes is non-zero:
//
//   - reply:    from's contribution arrived;
//   - decision: some decision reached this rank first (an earlier
//     coordinator decided before dying) — the caller must adopt it;
//   - err:      from failed before replying (a RankFailedError, the caller
//     counts it dead and moves on) or the device terminated.
func (d *Device) FTAwaitReply(ctx, seq, from int) (reply, decision []byte, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := ftKey{ctx: ctx, seq: seq}
	inst := d.ftInstLocked(key)
	for {
		if e := d.usable(); e != nil {
			return nil, nil, e
		}
		if inst.decided {
			return nil, append([]byte(nil), inst.decision...), nil
		}
		if b, ok := inst.replies[from]; ok {
			return append([]byte(nil), b...), nil, nil
		}
		if e, ok := d.dead[from]; ok {
			return nil, nil, e
		}
		d.cond.Wait()
	}
}

// FTAwaitDecision blocks until instance (ctx, seq) is decided, returning
// the decision, or until world rank coord — the coordinator this member is
// counting on — fails, returning its RankFailedError so the member can
// move to the next coordinator in the chain. Any decision satisfies the
// wait, whoever sent it.
func (d *Device) FTAwaitDecision(ctx, seq, coord int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	inst := d.ftInstLocked(ftKey{ctx: ctx, seq: seq})
	for {
		if e := d.usable(); e != nil {
			return nil, e
		}
		if inst.decided {
			return append([]byte(nil), inst.decision...), nil
		}
		if e, ok := d.dead[coord]; ok {
			return nil, e
		}
		d.cond.Wait()
	}
}

// FTDecide records the decision of instance (ctx, seq) locally and
// broadcasts it to every live member (world ranks; self and dead ranks are
// skipped). If some decision already reached this rank, that earlier
// decision wins and is the one re-broadcast; the effective decision is
// returned either way.
func (d *Device) FTDecide(ctx, seq int, decision []byte, members []int) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := ftKey{ctx: ctx, seq: seq}
	inst := d.ftInstLocked(key)
	if !inst.decided {
		inst.decided = true
		inst.decision = append([]byte(nil), decision...)
		for _, p := range inst.pulls {
			d.sendFTLocked(p, wire.KindFTDecide, key, inst.decision)
		}
		inst.pulls = nil
	}
	for _, m := range members {
		if m == d.rank {
			continue
		}
		if _, dead := d.dead[m]; dead {
			continue
		}
		d.sendFTLocked(m, wire.KindFTDecide, key, inst.decision)
	}
	d.cond.Broadcast()
	return append([]byte(nil), inst.decision...)
}

// FTForget drops every agreement instance of collective context ctx. The
// communicator layer calls it when the communicator is freed; until then,
// decided instances keep answering stragglers' pulls.
func (d *Device) FTForget(ctx int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for key := range d.ft {
		if key.ctx == ctx {
			delete(d.ft, key)
		}
	}
}
