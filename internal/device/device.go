// Package device implements the "MPJ device level" of the paper — the
// analogue of MPICH's abstract device interface (MPID).
//
// Per §3.5 of the paper, the device deals only in:
//
//   - absolute (world) process ids — groups and communicators live above;
//   - integer contexts and tags — the full communicator abstraction lives
//     above;
//   - byte vectors — datatype handling lives above.
//
// The basic operations are Isend, Irecv and the wait/test family
// (WaitAny/TestAny et al.), which "suffice to build legal implementations
// of all the MPI communication modes". Two wire protocols are provided:
//
//   - eager: the payload travels with the envelope; unmatched messages are
//     buffered without limit on the receiver (paper §3.5 3a);
//   - rendezvous: a ready-to-send header is queued until a matching receive
//     is posted, the receiver answers clear-to-send, and only then does the
//     payload move (paper §3.5 3b) — receiver buffering is bounded by
//     queued headers.
//
// Standard-mode sends pick eager below EagerLimit and rendezvous above;
// synchronous sends always use rendezvous (the CTS proves a matching
// receive was posted); ready sends always use eager.
//
// The device is the terminal owner of every frame it touches (see the
// transport.Handler contract): outbound frames pass to the transport with
// Send, and inbound frames are released to the wire frame pool as soon as
// their bytes are copied out — except frames adopted whole by an
// allocate-on-arrival receive, whose payload the caller keeps (see
// Request.Data), and which are therefore never recycled.
//
// The device boundary is one of the two instrumentation seams: an
// optional prof.Recorder (WithProfiler) observes every send and receive
// post and every payload arrival, split by wire protocol — see
// internal/prof and the "Instrumentation seams" section of
// ARCHITECTURE.md.
//
// See ARCHITECTURE.md at the repository root for where this package sits in
// the layer stack.
package device

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"mpj/internal/prof"
	"mpj/internal/transport"
	"mpj/internal/wire"
)

// Wildcards accepted by Irecv and Probe.
const (
	// AnySource matches messages from every source rank.
	AnySource = -1
	// AnyTag matches messages with any tag.
	AnyTag = -1
)

// DefaultEagerLimit is the payload size (bytes) up to which standard-mode
// sends use the eager protocol. Chosen near the classic MPICH default; the
// A2 ablation benchmark sweeps it.
const DefaultEagerLimit = 16 << 10

// Mode selects the send protocol semantics.
type Mode uint8

const (
	// ModeStandard uses eager for payloads up to the eager limit and
	// rendezvous beyond it.
	ModeStandard Mode = iota
	// ModeSync always uses rendezvous; completion implies a matching
	// receive was posted (MPI_Ssend semantics).
	ModeSync
	// ModeReady always uses eager: the caller asserts the receive is
	// already posted (MPI_Rsend semantics).
	ModeReady
)

// Errors reported by the device.
var (
	// ErrTruncate reports a message longer than the posted receive buffer.
	ErrTruncate = errors.New("device: message truncated")
	// ErrClosed reports use of a closed device.
	ErrClosed = errors.New("device: closed")
	// ErrPeerFailure reports that a peer process failed. Kept as a match
	// target for errors.Is alongside ErrRankFailed: RankFailedError
	// matches both, so callers written against the original total-failure
	// model keep working.
	ErrPeerFailure = errors.New("device: peer failure")
	// ErrRankFailed reports that a specific peer rank failed; operations
	// touching that rank complete with a RankFailedError instead of
	// hanging, and the rest of the device stays usable (ULFM-style
	// per-rank failure semantics).
	ErrRankFailed = errors.New("device: rank failed")
)

// RankFailedError is the typed error completing every operation that
// touches a failed rank: Rank is the absolute (world) rank of the dead
// process and Cause the detection-level error (a broken connection, an
// expired lease, an injected fault). It matches both ErrRankFailed and the
// legacy ErrPeerFailure sentinel under errors.Is.
type RankFailedError struct {
	Rank  int
	Cause error
}

// Error renders the failure.
func (e *RankFailedError) Error() string {
	if e.Cause == nil {
		return fmt.Sprintf("rank %d failed", e.Rank)
	}
	return fmt.Sprintf("rank %d failed: %v", e.Rank, e.Cause)
}

// Unwrap exposes the detection-level cause.
func (e *RankFailedError) Unwrap() error { return e.Cause }

// Is matches the ErrRankFailed and ErrPeerFailure sentinels.
func (e *RankFailedError) Is(target error) bool {
	return target == ErrRankFailed || target == ErrPeerFailure
}

// FailedRank extracts the world rank carried by a RankFailedError anywhere
// in err's chain; ok is false when err carries none.
func FailedRank(err error) (rank int, ok bool) {
	var rf *RankFailedError
	if errors.As(err, &rf) {
		return rf.Rank, true
	}
	return 0, false
}

// Stats counts protocol events; the protocol benchmarks and tests read it.
type Stats struct {
	EagerSent    atomic.Int64
	EagerRecv    atomic.Int64
	RTSSent      atomic.Int64
	RTSRecv      atomic.Int64
	CTSSent      atomic.Int64
	DataSent     atomic.Int64
	DataRecv     atomic.Int64
	Unexpected   atomic.Int64 // messages queued before a matching receive
	PostedDirect atomic.Int64 // messages that met an already-posted receive
}

// unexpected is an arrived message (eager payload or rendezvous header)
// for which no receive has been posted yet.
type unexpected struct {
	src   int
	tag   int
	ctx   int
	eager bool
	frame []byte // eager only: the retained frame, released when matched
	msgID uint64 // rendezvous only
	plen  int    // rendezvous payload length
}

// bytes returns the payload length of the queued message.
func (u *unexpected) bytes() int {
	if u.eager {
		return len(u.frame) - wire.HeaderLen
	}
	return u.plen
}

// rdvKey identifies an in-flight rendezvous on the receiver side.
type rdvKey struct {
	src   int
	msgID uint64
}

// Device is one endpoint of the MPJ device level, bound to a Transport.
type Device struct {
	t     transport.Transport
	rank  int
	size  int
	stats Stats

	mu   sync.Mutex
	cond sync.Cond // broadcast whenever any request or probe state changes

	eagerLimit int
	closed     bool
	failure    error

	// Failure registry (see NotifyRankFailed): dead maps a failed peer's
	// world rank to its RankFailedError; failEpoch increments on every
	// newly detected failure so parked waiters and the collective schedule
	// engine can re-check membership without scanning the map.
	dead      map[int]error
	failEpoch uint64

	posted []*Request   // posted receives, FIFO
	unexp  []unexpected // arrived-but-unmatched messages, FIFO

	pendingRTS map[uint64]*Request // sender side: msgID → send awaiting CTS
	awaitData  map[rdvKey]*Request // receiver side: matched RTS awaiting DATA

	ft map[ftKey]*ftInst // fault-tolerant agreement instances (see ft.go)

	nextMsgID uint64
	seq       []uint64 // per-destination sequence numbers (diagnostics)

	onFailure func(peer int, err error)
	onRevoke  func(ctx int)             // communicator revocation handler (see SetRevokeHandler)
	roundHook func(ctx, tag, round int) // fault-injection seam (see SetRoundHook)

	// One-sided support (see rma.go): onRMA dispatches inbound RMA frames
	// to the window layer; failWatchers are additional failure listeners
	// (window epoch waiters) invoked after every newly detected failure.
	onRMA        func(src int, h *wire.Header, payload []byte)
	failWatchers []func(rank int, err error)

	// prof is the instrumentation sink (see internal/prof), set once at
	// Open and nil when profiling is off — every hook site below branches
	// on that nil, which is the whole disabled-mode cost.
	prof *prof.Recorder
}

// Option configures a Device at Open time.
type Option func(*Device)

// WithEagerLimit overrides the standard-mode eager/rendezvous threshold.
func WithEagerLimit(n int) Option {
	return func(d *Device) { d.eagerLimit = n }
}

// ParseEagerLimit parses the string form of the eager/rendezvous
// threshold (the MPJ_EAGER_LIMIT environment variable and the mpjrun
// -eager-limit surface share it). Empty means unset and returns 0; any
// other value must be a positive integer byte count.
func ParseEagerLimit(raw string) (int, error) {
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("eager limit %q: must be a positive byte count", raw)
	}
	return n, nil
}

// WithFailureHandler installs a callback invoked (once per failing peer,
// outside the device lock) when a peer connection dies. The job layer uses
// it to trigger the MPJAbort fan-out.
func WithFailureHandler(f func(peer int, err error)) Option {
	return func(d *Device) { d.onFailure = f }
}

// WithProfiler attaches an instrumentation recorder (see internal/prof):
// the device reports every send, receive post and payload arrival to it,
// split by protocol, and flushes it at Close/Abort. A nil recorder is
// profiling-off and costs one predictable branch per hook site.
func WithProfiler(r *prof.Recorder) Option {
	return func(d *Device) { d.prof = r }
}

// Open binds a Device to t and starts the transport. The device owns the
// transport from here on: Close closes it.
func Open(t transport.Transport, opts ...Option) (*Device, error) {
	d := &Device{
		t:          t,
		rank:       t.Rank(),
		size:       t.Size(),
		eagerLimit: DefaultEagerLimit,
		dead:       make(map[int]error),
		pendingRTS: make(map[uint64]*Request),
		awaitData:  make(map[rdvKey]*Request),
		ft:         make(map[ftKey]*ftInst),
		seq:        make([]uint64, t.Size()),
	}
	d.cond.L = &d.mu
	for _, opt := range opts {
		opt(d)
	}
	t.SetHandler(d.handle)
	t.SetErrorHandler(d.peerFailed)
	if err := t.Start(); err != nil {
		return nil, err
	}
	return d, nil
}

// Rank returns the absolute rank of this process.
func (d *Device) Rank() int { return d.rank }

// Size returns the number of processes in the job.
func (d *Device) Size() int { return d.size }

// EagerLimit returns the standard-mode protocol threshold.
func (d *Device) EagerLimit() int { return d.eagerLimit }

// Stats exposes the protocol counters.
func (d *Device) Stats() *Stats { return &d.stats }

// Transport exposes the transport this device is bound to; tests and
// benchmarks use it to observe which device (chan/tcp/hyb) a job selected.
func (d *Device) Transport() transport.Transport { return d.t }

// Name identifies the transport flavor ("chan", "tcp", "hyb") when the
// transport declares one; "" otherwise. Keys the measured collective
// crossover tables.
func (d *Device) Name() string {
	if n, ok := d.t.(interface{ DeviceName() string }); ok {
		return n.DeviceName()
	}
	return ""
}

// LocalityTable exposes the per-rank locality keys the bootstrap handed
// the transport, or nil when the transport has no locality knowledge
// (chan and tcp meshes — one flat group). Entry i is rank i's key; equal
// non-empty keys mean co-located ranks. The topology-aware hierarchical
// collectives group ranks by it.
func (d *Device) LocalityTable() []string {
	if lt, ok := d.t.(interface{ LocalityTable() []string }); ok {
		return lt.LocalityTable()
	}
	return nil
}

// Profiler returns the attached instrumentation recorder, or nil when
// profiling is off. The field is set once at Open and never mutated, so
// the read is safe from any goroutine.
func (d *Device) Profiler() *prof.Recorder { return d.prof }

// Isend starts a non-blocking send of buf to absolute rank dst with the
// given tag and context. The returned request completes once buf is
// reusable; for ModeSync that also implies a matching receive was posted.
// buf is copied into the outgoing frame immediately, so the caller may
// reuse it as soon as Isend returns, but the *request* still tracks
// protocol completion (rendezvous waits for its CTS).
func (d *Device) Isend(buf []byte, dst, tag, ctx int, mode Mode) (*Request, error) {
	if dst < 0 || dst >= d.size {
		return nil, fmt.Errorf("device: isend to rank %d of %d: %w", dst, d.size, transport.ErrBadRank)
	}
	d.mu.Lock()
	if err := d.usable(); err != nil {
		d.mu.Unlock()
		return nil, err
	}
	if err := d.deadPeerLocked(dst); err != nil {
		d.mu.Unlock()
		return nil, err
	}
	r := &Request{d: d, kind: reqSend, dst: dst, tag: tag, ctx: ctx}

	eager := mode == ModeReady || (mode == ModeStandard && len(buf) <= d.eagerLimit)
	if eager {
		h := wire.Header{
			Kind:    wire.KindEager,
			Src:     int32(d.rank),
			Tag:     int32(tag),
			Context: int32(ctx),
			Seq:     d.seq[dst],
			Len:     int32(len(buf)),
		}
		d.seq[dst]++
		frame := wire.NewFrame(&h, buf)
		d.completeLocked(r, Status{Source: d.rank, Tag: tag, Count: len(buf)}, nil)
		d.mu.Unlock()
		d.stats.EagerSent.Add(1)
		if p := d.prof; p != nil {
			p.Send(ctx, len(buf), true)
		}
		return r, d.t.Send(dst, frame)
	}

	// Rendezvous: send RTS, stash the payload until the CTS arrives. The
	// stash comes from the frame pool (the caller may reuse buf
	// immediately) and is recycled once the DATA frame is built.
	d.nextMsgID++
	r.msgID = d.nextMsgID
	r.payload = wire.GetBuf(len(buf))
	copy(r.payload, buf)
	r.count = len(buf)
	d.pendingRTS[r.msgID] = r
	h := wire.Header{
		Kind:    wire.KindRTS,
		Src:     int32(d.rank),
		Tag:     int32(tag),
		Context: int32(ctx),
		Seq:     d.seq[dst],
		MsgID:   r.msgID,
		Len:     int32(len(buf)),
	}
	d.seq[dst]++
	frame := wire.NewFrame(&h, nil)
	d.mu.Unlock()
	d.stats.RTSSent.Add(1)
	if p := d.prof; p != nil {
		p.Send(ctx, len(buf), false)
	}
	return r, d.t.Send(dst, frame)
}

// IsendFill starts a non-blocking send whose n-byte payload is produced by
// fill writing directly into the outgoing eager frame (or the rendezvous
// stash), skipping the intermediate pack buffer that Isend's []byte
// argument implies. fill runs exactly once, synchronously, before IsendFill
// returns — so buffers it reads may be reused immediately afterwards — and
// must overwrite all n bytes. A fill error aborts the send: the frame goes
// back to the pool and the error is returned verbatim.
//
// The datatype layer uses this to pack user buffers straight into pooled
// wire frames ("all handling of user-buffer datatypes outside the device
// level", without paying a copy for the separation).
func (d *Device) IsendFill(n int, fill func(payload []byte) error, dst, tag, ctx int, mode Mode) (*Request, error) {
	if dst < 0 || dst >= d.size {
		return nil, fmt.Errorf("device: isend to rank %d of %d: %w", dst, d.size, transport.ErrBadRank)
	}

	eager := mode == ModeReady || (mode == ModeStandard && n <= d.eagerLimit)
	if eager {
		frame := wire.GetBuf(wire.HeaderLen + n)
		if err := fill(frame[wire.HeaderLen:]); err != nil {
			wire.PutBuf(frame)
			return nil, err
		}
		d.mu.Lock()
		if err := d.usable(); err != nil {
			d.mu.Unlock()
			wire.PutBuf(frame)
			return nil, err
		}
		if err := d.deadPeerLocked(dst); err != nil {
			d.mu.Unlock()
			wire.PutBuf(frame)
			return nil, err
		}
		r := &Request{d: d, kind: reqSend, dst: dst, tag: tag, ctx: ctx}
		h := wire.Header{
			Kind:    wire.KindEager,
			Src:     int32(d.rank),
			Tag:     int32(tag),
			Context: int32(ctx),
			Seq:     d.seq[dst],
			Len:     int32(n),
		}
		d.seq[dst]++
		_ = h.Encode(frame) // cannot fail: the frame covers the header
		d.completeLocked(r, Status{Source: d.rank, Tag: tag, Count: n}, nil)
		d.mu.Unlock()
		d.stats.EagerSent.Add(1)
		if p := d.prof; p != nil {
			p.Send(ctx, n, true)
		}
		return r, d.t.Send(dst, frame)
	}

	// Rendezvous: fill the stashed payload in place (no defensive copy
	// needed — the bytes are packed, not aliased to the user buffer). The
	// stash is pooled and recycled once the DATA frame is built.
	payload := wire.GetBuf(n)
	if err := fill(payload); err != nil {
		wire.PutBuf(payload)
		return nil, err
	}
	d.mu.Lock()
	if err := d.usable(); err != nil {
		d.mu.Unlock()
		wire.PutBuf(payload)
		return nil, err
	}
	if err := d.deadPeerLocked(dst); err != nil {
		d.mu.Unlock()
		wire.PutBuf(payload)
		return nil, err
	}
	r := &Request{d: d, kind: reqSend, dst: dst, tag: tag, ctx: ctx}
	d.nextMsgID++
	r.msgID = d.nextMsgID
	r.payload = payload
	r.count = n
	d.pendingRTS[r.msgID] = r
	h := wire.Header{
		Kind:    wire.KindRTS,
		Src:     int32(d.rank),
		Tag:     int32(tag),
		Context: int32(ctx),
		Seq:     d.seq[dst],
		MsgID:   r.msgID,
		Len:     int32(n),
	}
	d.seq[dst]++
	frame := wire.NewFrame(&h, nil)
	d.mu.Unlock()
	d.stats.RTSSent.Add(1)
	if p := d.prof; p != nil {
		p.Send(ctx, n, false)
	}
	return r, d.t.Send(dst, frame)
}

// Irecv posts a non-blocking receive into buf for a message matching
// (src, tag, ctx); src may be AnySource and tag may be AnyTag. The request
// completes when a matching message has fully arrived in buf.
//
// A nil buf selects allocate-on-arrival: the device sizes the buffer to
// the incoming message (no truncation possible) and the payload is read
// with Request.Data after completion. The layers above use this for
// variable-length (serialized object) messages.
func (d *Device) Irecv(buf []byte, src, tag, ctx int) (*Request, error) {
	if src != AnySource && (src < 0 || src >= d.size) {
		return nil, fmt.Errorf("device: irecv from rank %d of %d: %w", src, d.size, transport.ErrBadRank)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usable(); err != nil {
		return nil, err
	}
	r := &Request{d: d, kind: reqRecv, buf: buf, dynamic: buf == nil, src: src, tag: tag, ctx: ctx}

	// First try the unexpected queue, in arrival order.
	for i, u := range d.unexp {
		if !envelopeMatches(src, tag, ctx, u.src, u.tag, u.ctx) {
			continue
		}
		d.unexp = append(d.unexp[:i], d.unexp[i+1:]...)
		if u.eager {
			if !d.deliverLocked(r, u.src, u.tag, wire.Payload(u.frame)) {
				wire.PutBuf(u.frame)
			}
		} else {
			d.grantRendezvousLocked(r, u.src, u.tag, u.msgID, u.plen)
		}
		d.stats.PostedDirect.Add(1)
		if p := d.prof; p != nil {
			p.RecvPost(ctx)
		}
		return r, nil
	}
	// Nothing already arrived can satisfy the receive: a dead source can
	// never send one, so posting would hang forever — fail fast instead.
	// AnySource receives fail as soon as any peer is dead (the message
	// could have been coming from it), matching ULFM's pending-wildcard
	// rule.
	if err := d.deadSourceLocked(src); err != nil {
		return nil, err
	}
	d.posted = append(d.posted, r)
	if p := d.prof; p != nil {
		p.RecvPost(ctx)
	}
	return r, nil
}

// Iprobe checks, without receiving, whether a message matching
// (src, tag, ctx) has arrived. The returned status reports the envelope
// and byte count of the earliest such message.
func (d *Device) Iprobe(src, tag, ctx int) (Status, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, u := range d.unexp {
		if envelopeMatches(src, tag, ctx, u.src, u.tag, u.ctx) {
			return Status{Source: u.src, Tag: u.tag, Count: u.bytes()}, true
		}
	}
	return Status{}, false
}

// Probe blocks until a message matching (src, tag, ctx) has arrived and
// returns its envelope without receiving it.
func (d *Device) Probe(src, tag, ctx int) (Status, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if err := d.usable(); err != nil {
			return Status{}, err
		}
		for _, u := range d.unexp {
			if envelopeMatches(src, tag, ctx, u.src, u.tag, u.ctx) {
				return Status{Source: u.src, Tag: u.tag, Count: u.bytes()}, nil
			}
		}
		if err := d.deadSourceLocked(src); err != nil {
			return Status{}, err
		}
		d.cond.Wait()
	}
}

// usable reports the terminal error state, if any. Callers hold d.mu.
func (d *Device) usable() error {
	if d.closed {
		return ErrClosed
	}
	if d.failure != nil {
		return d.failure
	}
	return nil
}

// deadPeerLocked returns the registered failure of dst, if any. Callers
// hold d.mu.
func (d *Device) deadPeerLocked(dst int) error {
	if err, ok := d.dead[dst]; ok {
		return err
	}
	return nil
}

// deadSourceLocked is deadPeerLocked generalized to receive matching: an
// AnySource receive fails on the earliest-failed rank. Callers hold d.mu.
func (d *Device) deadSourceLocked(src int) error {
	if src != AnySource {
		return d.deadPeerLocked(src)
	}
	for r := 0; r < d.size; r++ {
		if err, ok := d.dead[r]; ok {
			return err
		}
	}
	return nil
}

// RankFailed reports whether world rank r is registered as failed.
func (d *Device) RankFailed(r int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.dead[r]
	return ok
}

// RankError returns the registered RankFailedError of world rank r, or nil
// while r is presumed alive.
func (d *Device) RankError(r int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead[r]
}

// FailedRanks returns the sorted world ranks currently registered as
// failed.
func (d *Device) FailedRanks() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int, 0, len(d.dead))
	for r := range d.dead {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// FailEpoch returns the failure-detection epoch: it increments once per
// newly detected rank failure, so a cached copy tells a caller whether any
// new failure arrived since it last looked.
func (d *Device) FailEpoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failEpoch
}

// envelopeMatches implements MPI matching: recvSrc/recvTag may be
// wildcards, context must match exactly.
func envelopeMatches(recvSrc, recvTag, recvCtx, src, tag, ctx int) bool {
	if recvCtx != ctx {
		return false
	}
	if recvSrc != AnySource && recvSrc != src {
		return false
	}
	if recvTag != AnyTag && recvTag != tag {
		return false
	}
	return true
}

// deliverLocked moves an arrived payload into a receive request and
// completes it. A nil receive buffer means "allocate on arrival": the
// request adopts the payload slice (zero copy — the frame is already
// owned by the device) and exposes it via Data. It reports whether the
// payload — and hence the frame it aliases — was adopted; if not, the
// caller still owns the frame and may recycle it. Callers hold d.mu.
func (d *Device) deliverLocked(r *Request, src, tag int, payload []byte) (adopted bool) {
	if r.dynamic {
		r.buf = payload
		d.completeLocked(r, Status{Source: src, Tag: tag, Count: len(payload)}, nil)
		return true
	}
	n := copy(r.buf, payload)
	var err error
	if len(payload) > len(r.buf) {
		err = fmt.Errorf("%w: got %d bytes, buffer holds %d", ErrTruncate, len(payload), len(r.buf))
	}
	d.completeLocked(r, Status{Source: src, Tag: tag, Count: n}, err)
	return false
}

// grantRendezvousLocked answers a matched RTS with a CTS and parks the
// receive request until the DATA frame arrives. Callers hold d.mu.
func (d *Device) grantRendezvousLocked(r *Request, src, tag int, msgID uint64, plen int) {
	r.matchedSrc = src
	r.matchedTag = tag
	r.expect = plen
	d.awaitData[rdvKey{src: src, msgID: msgID}] = r
	h := wire.Header{
		Kind:    wire.KindCTS,
		Src:     int32(d.rank),
		Context: int32(r.ctx),
		MsgID:   msgID,
	}
	frame := wire.NewFrame(&h, nil)
	d.stats.CTSSent.Add(1)
	// Send outside nothing: transport sends never block, so issuing them
	// under d.mu is safe and keeps CTS emission ordered with matching.
	_ = d.t.Send(src, frame)
}

// completeLocked finishes a request and wakes all waiters. Callers hold d.mu.
func (d *Device) completeLocked(r *Request, st Status, err error) {
	r.done = true
	r.status = st
	r.err = err
	d.cond.Broadcast()
}

// handle is the transport inbound-frame handler. It runs on reader
// goroutines and never blocks: every action is a queue edit, a buffer copy
// or an asynchronous send.
//
// Per the Handler contract the device owns frame from here on. Frames
// whose contents are consumed inside the call go back to the frame pool on
// the way out; the two exceptions are unmatched eager frames (retained in
// the unexpected queue until a receive matches them) and frames adopted by
// an allocate-on-arrival receive (the caller keeps the payload).
func (d *Device) handle(src int, frame []byte) {
	var h wire.Header
	if err := h.Decode(frame); err != nil {
		d.peerFailed(src, err)
		return
	}
	payload := wire.Payload(frame)
	retained := false
	revokeCtx := -1

	// One-sided frames bypass the matching engine entirely: they are
	// handled synchronously by the window layer, which serializes on the
	// window's own mutex. Deliberately no eager/rendezvous accounting —
	// RMA traffic has its own counters (see internal/prof).
	if h.Kind.IsRMA() {
		d.mu.Lock()
		f := d.onRMA
		d.mu.Unlock()
		if f != nil {
			f(src, &h, payload)
		}
		wire.PutBuf(frame)
		return
	}

	// Obituaries feed the failure registry directly: an out-of-band death
	// verdict (lease expiry, observed process exit) gossiped by a peer is
	// equivalent to a local detection. No re-gossip here — the origin of
	// the verdict fans out to every peer itself (see BroadcastObit), and
	// NotifyRankFailed absorbs duplicates.
	if h.Kind == wire.KindObit {
		dead, cause := int(h.Tag), string(payload)
		wire.PutBuf(frame)
		if dead >= 0 && dead < d.size {
			// An obit for the device's own rank means the control plane
			// declared this process dead (a partitioned lease expired):
			// NotifyRankFailed turns that into total local failure, so the
			// false survivor unwinds instead of diverging from the verdict.
			d.NotifyRankFailed(dead, &ObitError{Reporter: src, Cause: cause})
		}
		return
	}

	// Payload arrival accounting happens here, at the frame boundary:
	// eager and rendezvous-data frames carry their context, so bytes are
	// attributed per communicator on the receiver too.
	if p := d.prof; p != nil {
		switch h.Kind {
		case wire.KindEager:
			p.Arrive(int(h.Context), len(payload), true)
		case wire.KindData:
			p.Arrive(int(h.Context), len(payload), false)
		}
	}

	d.mu.Lock()
	switch h.Kind {
	case wire.KindRevoke:
		revokeCtx = int(h.Context)

	case wire.KindFTPull, wire.KindFTReply, wire.KindFTDecide:
		d.handleFTLocked(src, &h, payload)
	case wire.KindEager:
		d.stats.EagerRecv.Add(1)
		if r := d.matchPostedLocked(src, int(h.Tag), int(h.Context)); r != nil {
			retained = d.deliverLocked(r, src, int(h.Tag), payload)
		} else {
			d.stats.Unexpected.Add(1)
			d.unexp = append(d.unexp, unexpected{
				src: src, tag: int(h.Tag), ctx: int(h.Context),
				eager: true, frame: frame,
			})
			retained = true
			d.cond.Broadcast() // wake probes
		}

	case wire.KindRTS:
		d.stats.RTSRecv.Add(1)
		if r := d.matchPostedLocked(src, int(h.Tag), int(h.Context)); r != nil {
			d.grantRendezvousLocked(r, src, int(h.Tag), h.MsgID, int(h.Len))
		} else {
			d.stats.Unexpected.Add(1)
			d.unexp = append(d.unexp, unexpected{
				src: src, tag: int(h.Tag), ctx: int(h.Context),
				msgID: h.MsgID, plen: int(h.Len),
			})
			d.cond.Broadcast() // wake probes
		}

	case wire.KindCTS:
		if r, ok := d.pendingRTS[h.MsgID]; ok {
			delete(d.pendingRTS, h.MsgID)
			dh := wire.Header{
				Kind:    wire.KindData,
				Src:     int32(d.rank),
				Tag:     int32(r.tag),
				Context: int32(r.ctx),
				MsgID:   r.msgID,
				Len:     int32(len(r.payload)),
			}
			dataFrame := wire.NewFrame(&dh, r.payload)
			wire.PutBuf(r.payload) // stash copied into the frame; recycle it
			r.payload = nil
			d.completeLocked(r, Status{Source: d.rank, Tag: r.tag, Count: r.count}, nil)
			d.stats.DataSent.Add(1)
			_ = d.t.Send(src, dataFrame)
		}
		// A CTS for an unknown msgID means the send was cancelled after
		// the receiver matched it; the CancelAck(denied) path has already
		// resolved the race in favour of delivery, so this cannot happen
		// for correct traffic. Ignore it defensively.

	case wire.KindData:
		d.stats.DataRecv.Add(1)
		key := rdvKey{src: src, msgID: h.MsgID}
		if r, ok := d.awaitData[key]; ok {
			delete(d.awaitData, key)
			retained = d.deliverLocked(r, r.matchedSrc, r.matchedTag, payload)
		}

	case wire.KindCancel:
		granted := false
		for i, u := range d.unexp {
			if !u.eager && u.src == src && u.msgID == h.MsgID {
				d.unexp = append(d.unexp[:i], d.unexp[i+1:]...)
				granted = true
				break
			}
		}
		ah := wire.Header{Kind: wire.KindCancelAck, Src: int32(d.rank), MsgID: h.MsgID}
		if granted {
			ah.Len = 1
		}
		_ = d.t.Send(src, wire.NewFrame(&ah, nil))

	case wire.KindCancelAck:
		if r, ok := d.pendingRTS[h.MsgID]; ok && h.Len == 1 {
			delete(d.pendingRTS, h.MsgID)
			if r.payload != nil {
				wire.PutBuf(r.payload) // cancelled before DATA: recycle the stash
			}
			r.payload = nil
			st := Status{Source: d.rank, Tag: r.tag, Cancelled: true}
			d.completeLocked(r, st, nil)
		}
		// Denied (Len==0): the CTS is on its way (it was sent before the
		// ack on the same FIFO path) or already processed; the send
		// completes through the normal rendezvous path.
	}
	revokeHandler := d.onRevoke
	d.mu.Unlock()
	if !retained {
		wire.PutBuf(frame)
	}
	if revokeCtx >= 0 && revokeHandler != nil {
		revokeHandler(revokeCtx)
	}
}

// matchPostedLocked finds and removes the first posted receive matching an
// arrived envelope. Callers hold d.mu.
func (d *Device) matchPostedLocked(src, tag, ctx int) *Request {
	for i, r := range d.posted {
		if envelopeMatches(r.src, r.tag, r.ctx, src, tag, ctx) {
			d.posted = append(d.posted[:i], d.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// peerFailed is the transport error handler: connection-level failures
// feed the per-rank failure registry.
func (d *Device) peerFailed(peer int, err error) {
	d.NotifyRankFailed(peer, err)
}

// NotifyRankFailed registers world rank peer as failed (idempotent per
// rank). Detection sources converge here: transport connection breaks,
// lease expiries surfaced by the runtime, and injected faults.
//
// Unlike the paper's original total-failure model, the device stays usable:
// only operations touching the dead rank complete, with a RankFailedError
// carrying the rank — posted receives matching it (including AnySource
// wildcards, which the dead rank might have satisfied), rendezvous sends
// awaiting its CTS, and matched receives awaiting its DATA. The failure
// epoch increments and every parked waiter wakes, so collective schedules
// re-examine their membership (see core's schedule engine).
//
// A notification for the device's own rank means this process was declared
// dead (an injected kill, an expired local lease): the device enters total
// local failure so every pending and future operation errors out and the
// rank unwinds promptly.
func (d *Device) NotifyRankFailed(peer int, cause error) {
	d.mu.Lock()
	if d.closed || d.failure != nil {
		d.mu.Unlock()
		return
	}
	if _, dup := d.dead[peer]; dup {
		d.mu.Unlock()
		return
	}
	fail := &RankFailedError{Rank: peer, Cause: cause}
	d.dead[peer] = fail
	d.failEpoch++

	if peer == d.rank {
		// Self-failure: total local failure, as Abort but with the typed
		// error so waiters can tell a kill from an orderly shutdown.
		d.failure = fail
		for _, r := range d.posted {
			d.completeLocked(r, Status{}, fail)
		}
		d.posted = nil
		for id, r := range d.pendingRTS {
			delete(d.pendingRTS, id)
			d.completeLocked(r, Status{}, fail)
		}
		for key, r := range d.awaitData {
			delete(d.awaitData, key)
			d.completeLocked(r, Status{}, fail)
		}
	} else {
		kept := d.posted[:0]
		for _, r := range d.posted {
			if r.src == peer || r.src == AnySource {
				d.completeLocked(r, Status{}, fail)
				continue
			}
			kept = append(kept, r)
		}
		d.posted = kept
		for id, r := range d.pendingRTS {
			if r.dst == peer {
				delete(d.pendingRTS, id)
				d.completeLocked(r, Status{}, fail)
			}
		}
		for key, r := range d.awaitData {
			if key.src == peer {
				delete(d.awaitData, key)
				d.completeLocked(r, Status{}, fail)
			}
		}
	}
	d.cond.Broadcast()
	h := d.onFailure
	watchers := make([]func(rank int, err error), len(d.failWatchers))
	copy(watchers, d.failWatchers)
	d.mu.Unlock()
	if h != nil {
		h(peer, cause)
	}
	for _, w := range watchers {
		w(peer, fail)
	}
}

// FailContext completes every pending operation on device context ctx with
// cause: posted receives, rendezvous sends awaiting CTS and matched
// receives awaiting DATA. The communicator layer uses it to implement
// revocation — a revoked communicator's two contexts are failed so
// stragglers' pending operations return promptly.
func (d *Device) FailContext(ctx int, cause error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.failure != nil {
		return
	}
	kept := d.posted[:0]
	for _, r := range d.posted {
		if r.ctx == ctx {
			d.completeLocked(r, Status{}, cause)
			continue
		}
		kept = append(kept, r)
	}
	d.posted = kept
	for id, r := range d.pendingRTS {
		if r.ctx == ctx {
			delete(d.pendingRTS, id)
			d.completeLocked(r, Status{}, cause)
		}
	}
	for key, r := range d.awaitData {
		if r.ctx == ctx {
			delete(d.awaitData, key)
			d.completeLocked(r, Status{}, cause)
		}
	}
	d.cond.Broadcast()
}

// SetRevokeHandler installs the callback invoked (outside the device lock)
// when a KindRevoke frame arrives; ctx is the revoked communicator's
// point-to-point context. The communicator layer maps it back to the Comm
// and revokes it locally.
func (d *Device) SetRevokeHandler(f func(ctx int)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onRevoke = f
}

// SendRevoke propagates a communicator revocation to world rank dst,
// best-effort: ctx is the communicator's point-to-point context id.
func (d *Device) SendRevoke(dst, ctx int) error {
	if dst < 0 || dst >= d.size {
		return transport.ErrBadRank
	}
	h := wire.Header{Kind: wire.KindRevoke, Src: int32(d.rank), Context: int32(ctx)}
	return d.t.Send(dst, wire.NewFrame(&h, nil))
}

// SetRoundHook installs the fault-injection seam: f runs synchronously
// every time the collective schedule engine is about to post a round, with
// the device context, schedule tag and round index. Test harnesses arm it
// to kill, drop or delay a rank at a deterministic point mid-collective.
// A nil f clears the hook.
func (d *Device) SetRoundHook(f func(ctx, tag, round int)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.roundHook = f
}

// CallRoundHook invokes the installed round hook, if any. The collective
// schedule engine calls it before posting each round.
func (d *Device) CallRoundHook(ctx, tag, round int) {
	d.mu.Lock()
	f := d.roundHook
	d.mu.Unlock()
	if f != nil {
		f(ctx, tag, round)
	}
}

// Drain blocks until all accepted outbound frames are handed to the medium.
func (d *Device) Drain() { d.t.Drain() }

// Abort tears the device down abruptly after an application failure:
// pending requests complete with ErrClosed locally, and the transport is
// aborted so remote peers observe a failure (not an orderly goodbye) and
// cascade into their own aborts.
func (d *Device) Abort() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	for _, r := range d.posted {
		d.completeLocked(r, Status{}, ErrClosed)
	}
	d.posted = nil
	for id, r := range d.pendingRTS {
		delete(d.pendingRTS, id)
		d.completeLocked(r, Status{}, ErrClosed)
	}
	for key, r := range d.awaitData {
		delete(d.awaitData, key)
		d.completeLocked(r, Status{}, ErrClosed)
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	d.t.Abort()
	if d.prof != nil {
		_ = d.prof.Close() // flush the trace file even on abrupt teardown
	}
}

// Close shuts the device down and closes its transport. Communication must
// be complete (the MPJ layer runs a barrier in finalize before calling
// this); pending requests at Close complete with ErrClosed.
func (d *Device) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	for _, r := range d.posted {
		d.completeLocked(r, Status{}, ErrClosed)
	}
	d.posted = nil
	for id, r := range d.pendingRTS {
		delete(d.pendingRTS, id)
		d.completeLocked(r, Status{}, ErrClosed)
	}
	for key, r := range d.awaitData {
		delete(d.awaitData, key)
		d.completeLocked(r, Status{}, ErrClosed)
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	err := d.t.Close()
	if d.prof != nil {
		if ferr := d.prof.Close(); err == nil {
			err = ferr // surface a failed trace flush
		}
	}
	return err
}
