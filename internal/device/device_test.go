package device

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mpj/internal/transport"
)

// openPair builds a 2-rank in-process mesh and opens devices on it.
func openPair(t *testing.T, opts ...Option) (*Device, *Device) {
	t.Helper()
	ds := openMesh(t, 2, opts...)
	return ds[0], ds[1]
}

// openMesh builds an np-rank in-process mesh of devices.
func openMesh(t *testing.T, np int, opts ...Option) []*Device {
	t.Helper()
	eps := transport.NewChanMesh(np)
	ds := make([]*Device, np)
	for i, ep := range eps {
		d, err := Open(ep, opts...)
		if err != nil {
			t.Fatalf("Open rank %d: %v", i, err)
		}
		ds[i] = d
	}
	t.Cleanup(func() {
		for _, d := range ds {
			d.Close()
		}
	})
	return ds
}

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i%13)
	}
	return b
}

func TestEagerSendRecv(t *testing.T) {
	d0, d1 := openPair(t)
	msg := payload(64, 1)

	buf := make([]byte, 64)
	rr, err := d1.Irecv(buf, 0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := d0.Isend(msg, 1, 5, 0, ModeStandard)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := sr.Wait(); err != nil || st.Count != 64 {
		t.Fatalf("send wait: st=%+v err=%v", st, err)
	}
	st, err := rr.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != 0 || st.Tag != 5 || st.Count != 64 {
		t.Errorf("recv status = %+v", st)
	}
	if !bytes.Equal(buf, msg) {
		t.Error("payload corrupted")
	}
	if d0.Stats().EagerSent.Load() != 1 || d0.Stats().RTSSent.Load() != 0 {
		t.Error("standard small send did not use the eager protocol")
	}
}

func TestRendezvousLargeStandardSend(t *testing.T) {
	d0, d1 := openPair(t)
	msg := payload(DefaultEagerLimit+1, 2)

	buf := make([]byte, len(msg))
	rr, err := d1.Irecv(buf, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := d0.Isend(msg, 1, 1, 0, ModeStandard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Error("payload corrupted")
	}
	if d0.Stats().RTSSent.Load() != 1 || d0.Stats().DataSent.Load() != 1 {
		t.Errorf("large standard send did not run rendezvous: RTS=%d DATA=%d",
			d0.Stats().RTSSent.Load(), d0.Stats().DataSent.Load())
	}
}

func TestSyncModeAlwaysRendezvous(t *testing.T) {
	d0, d1 := openPair(t)
	msg := payload(8, 3) // tiny, still must go rendezvous

	done := make(chan error, 1)
	go func() {
		sr, err := d0.Isend(msg, 1, 9, 0, ModeSync)
		if err != nil {
			done <- err
			return
		}
		_, err = sr.Wait()
		done <- err
	}()

	// The send must not complete before a matching receive is posted.
	select {
	case err := <-done:
		t.Fatalf("ssend completed with no matching receive (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	buf := make([]byte, 8)
	rr, err := d1.Irecv(buf, 0, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Error("payload corrupted")
	}
	if d0.Stats().RTSSent.Load() != 1 {
		t.Error("sync send did not use rendezvous")
	}
}

func TestReadyModeAlwaysEager(t *testing.T) {
	d0, d1 := openPair(t)
	msg := payload(DefaultEagerLimit*2, 4) // huge, still must go eager

	buf := make([]byte, len(msg))
	rr, err := d1.Irecv(buf, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := d0.Isend(msg, 1, 2, 0, ModeReady)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Error("payload corrupted")
	}
	if d0.Stats().EagerSent.Load() != 1 || d0.Stats().RTSSent.Load() != 0 {
		t.Error("ready send did not use the eager protocol")
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	d0, d1 := openPair(t)
	// Send before any receive is posted: must land in the unexpected
	// queue and complete a later receive.
	sr, err := d0.Isend([]byte("early"), 1, 3, 0, ModeStandard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Wait(); err != nil {
		t.Fatal(err)
	}
	// Give the frame time to arrive unexpected.
	waitUntil(t, func() bool { return d1.Stats().Unexpected.Load() == 1 })

	buf := make([]byte, 5)
	rr, err := d1.Irecv(buf, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rr.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:st.Count]) != "early" {
		t.Errorf("got %q", buf[:st.Count])
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWildcardReceive(t *testing.T) {
	ds := openMesh(t, 4)
	// Ranks 1..3 send to rank 0 with distinct tags.
	for r := 1; r < 4; r++ {
		sr, err := ds[r].Isend([]byte{byte(r)}, 0, r*10, 0, ModeStandard)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sr.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		buf := make([]byte, 1)
		rr, err := ds[0].Irecv(buf, AnySource, AnyTag, 0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := rr.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if st.Tag != st.Source*10 || int(buf[0]) != st.Source {
			t.Errorf("status %+v does not match payload %d", st, buf[0])
		}
		seen[st.Source] = true
	}
	if len(seen) != 3 {
		t.Errorf("heard from %d sources, want 3", len(seen))
	}
}

func TestNonOvertakingOrder(t *testing.T) {
	d0, d1 := openPair(t)
	const n = 100
	for i := 0; i < n; i++ {
		// Alternate eager and rendezvous so protocol choice cannot
		// reorder matching.
		size := 4
		if i%2 == 1 {
			size = DefaultEagerLimit + 4
		}
		msg := make([]byte, size)
		msg[0] = byte(i)
		if _, err := d0.Isend(msg, 1, 7, 0, ModeStandard); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		buf := make([]byte, DefaultEagerLimit+4)
		rr, err := d1.Irecv(buf, 0, 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rr.Wait(); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("receive %d matched message %d: overtaking", i, buf[0])
		}
	}
}

func TestContextIsolation(t *testing.T) {
	d0, d1 := openPair(t)
	// Same (src, tag), different contexts: receives must match only
	// within their context.
	if _, err := d0.Isend([]byte("ctx1"), 1, 0, 1, ModeStandard); err != nil {
		t.Fatal(err)
	}
	if _, err := d0.Isend([]byte("ctx2"), 1, 0, 2, ModeStandard); err != nil {
		t.Fatal(err)
	}
	buf2 := make([]byte, 4)
	rr2, err := d1.Irecv(buf2, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr2.Wait(); err != nil {
		t.Fatal(err)
	}
	if string(buf2) != "ctx2" {
		t.Errorf("context 2 receive got %q", buf2)
	}
	buf1 := make([]byte, 4)
	rr1, err := d1.Irecv(buf1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr1.Wait(); err != nil {
		t.Fatal(err)
	}
	if string(buf1) != "ctx1" {
		t.Errorf("context 1 receive got %q", buf1)
	}
}

func TestTruncationError(t *testing.T) {
	d0, d1 := openPair(t)
	buf := make([]byte, 4)
	rr, err := d1.Irecv(buf, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d0.Isend(payload(16, 5), 1, 0, 0, ModeStandard); err != nil {
		t.Fatal(err)
	}
	st, err := rr.Wait()
	if !errors.Is(err, ErrTruncate) {
		t.Errorf("got err %v, want ErrTruncate", err)
	}
	if st.Count != 4 {
		t.Errorf("count = %d, want 4 (buffer size)", st.Count)
	}
}

func TestProbeAndIprobe(t *testing.T) {
	d0, d1 := openPair(t)
	if _, ok := d1.Iprobe(AnySource, AnyTag, 0); ok {
		t.Error("Iprobe on empty queue reported a message")
	}
	if _, err := d0.Isend(payload(10, 6), 1, 77, 0, ModeStandard); err != nil {
		t.Fatal(err)
	}
	st, err := d1.Probe(0, 77, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != 0 || st.Tag != 77 || st.Count != 10 {
		t.Errorf("probe status = %+v", st)
	}
	// Probing must not consume: a receive still gets the message.
	buf := make([]byte, 10)
	rr, err := d1.Irecv(buf, 0, 77, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestProbeSeesRendezvousLength(t *testing.T) {
	d0, d1 := openPair(t)
	n := DefaultEagerLimit + 123
	if _, err := d0.Isend(payload(n, 7), 1, 1, 0, ModeStandard); err != nil {
		t.Fatal(err)
	}
	st, err := d1.Probe(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != n {
		t.Errorf("probe of rendezvous message reported %d bytes, want %d", st.Count, n)
	}
	buf := make([]byte, n)
	rr, _ := d1.Irecv(buf, 0, 1, 0)
	if _, err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAnyStepsThroughCompletions(t *testing.T) {
	d0, d1 := openPair(t)
	const n = 5
	reqs := make([]*Request, n)
	bufs := make([][]byte, n)
	for i := range reqs {
		bufs[i] = make([]byte, 1)
		var err error
		reqs[i], err = d1.Irecv(bufs[i], 0, i, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := d0.Isend([]byte{byte(i)}, 1, i, 0, ModeStandard); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		idx, st, err := d1.WaitAny(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if idx < 0 || seen[idx] {
			t.Fatalf("WaitAny returned idx %d (seen=%v)", idx, seen)
		}
		seen[idx] = true
		if st.Tag != idx {
			t.Errorf("request %d completed with tag %d", idx, st.Tag)
		}
	}
	if idx, _, err := d1.WaitAny(reqs); idx != -1 || err != nil {
		t.Errorf("WaitAny over consumed requests: idx=%d err=%v, want -1", idx, err)
	}
}

func TestTestAnySemantics(t *testing.T) {
	d0, d1 := openPair(t)
	buf := make([]byte, 1)
	rr, err := d1.Irecv(buf, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := d1.TestAny([]*Request{rr}); ok {
		t.Error("TestAny reported completion for a pending receive")
	}
	if _, err := d0.Isend([]byte{1}, 1, 0, 0, ModeStandard); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return rr.Done() })
	idx, _, ok, err := d1.TestAny([]*Request{rr})
	if !ok || idx != 0 || err != nil {
		t.Errorf("TestAny after completion: idx=%d ok=%v err=%v", idx, ok, err)
	}
	// No active requests left: MPI_Testany semantics say flag=true.
	idx, _, ok, _ = d1.TestAny([]*Request{rr})
	if !ok || idx != -1 {
		t.Errorf("TestAny with no active requests: idx=%d ok=%v, want -1/true", idx, ok)
	}
}

func TestWaitAllAndTestAll(t *testing.T) {
	d0, d1 := openPair(t)
	const n = 4
	reqs := make([]*Request, n+1) // include a nil slot
	for i := 0; i < n; i++ {
		buf := make([]byte, 1)
		var err error
		reqs[i], err = d1.Irecv(buf, 0, i, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := d1.TestAll(reqs); ok {
		t.Error("TestAll reported completion before any send")
	}
	for i := 0; i < n; i++ {
		if _, err := d0.Isend([]byte{byte(i)}, 1, i, 0, ModeStandard); err != nil {
			t.Fatal(err)
		}
	}
	sts, err := d1.WaitAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if sts[i].Tag != i {
			t.Errorf("slot %d: status %+v", i, sts[i])
		}
	}
	if sts, ok, err := d1.TestAll(reqs); !ok || err != nil || len(sts) != n+1 {
		t.Errorf("TestAll after WaitAll: ok=%v err=%v", ok, err)
	}
}

func TestSelfSend(t *testing.T) {
	ds := openMesh(t, 1)
	d := ds[0]
	buf := make([]byte, 3)
	rr, err := d.Irecv(buf, 0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Isend([]byte("abc"), 0, 4, 0, ModeStandard); err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abc" {
		t.Errorf("self send delivered %q", buf)
	}
}

func TestSelfRendezvous(t *testing.T) {
	ds := openMesh(t, 1)
	d := ds[0]
	n := DefaultEagerLimit * 2
	msg := payload(n, 8)
	buf := make([]byte, n)
	rr, err := d.Irecv(buf, 0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := d.Isend(msg, 0, 4, 0, ModeStandard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Error("self rendezvous corrupted payload")
	}
}

func TestCancelUnmatchedRecv(t *testing.T) {
	ds := openMesh(t, 2)
	buf := make([]byte, 4)
	rr, err := ds[1].Irecv(buf, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rr.Cancel(); err != nil {
		t.Fatal(err)
	}
	st, err := rr.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cancelled {
		t.Error("cancelled receive did not report Cancelled")
	}
}

func TestCancelPendingRendezvousSend(t *testing.T) {
	d0, d1 := openPair(t)
	msg := payload(DefaultEagerLimit+1, 9)
	sr, err := d0.Isend(msg, 1, 0, 0, ModeStandard)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the RTS is parked unexpected at the receiver, then cancel.
	waitUntil(t, func() bool { return d1.Stats().Unexpected.Load() == 1 })
	if err := sr.Cancel(); err != nil {
		t.Fatal(err)
	}
	st, err := sr.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cancelled {
		t.Error("cancel of unmatched rendezvous send did not take effect")
	}
	// The receiver must no longer see the message.
	if _, ok := d1.Iprobe(0, 0, 0); ok {
		t.Error("cancelled message still probeable at receiver")
	}
}

func TestCancelLosesRaceToMatch(t *testing.T) {
	d0, d1 := openPair(t)
	msg := payload(DefaultEagerLimit+1, 10)
	buf := make([]byte, len(msg))
	rr, err := d1.Irecv(buf, 0, 0, 0) // posted first: match wins
	if err != nil {
		t.Fatal(err)
	}
	sr, err := d0.Isend(msg, 1, 0, 0, ModeStandard)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel races the CTS; whatever the interleaving, the outcome must
	// be consistent: either both sides complete the transfer, or the
	// send is cancelled — but since the receive was already posted,
	// the match must win.
	_ = sr.Cancel()
	st, err := sr.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cancelled {
		t.Fatal("send cancelled even though the receive was already matched")
	}
	if _, err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Error("payload corrupted")
	}
}

func TestPeerFailureCompletesRequests(t *testing.T) {
	eps := transport.NewChanMesh(2)
	var failedPeer int
	failed := make(chan struct{})
	d0, err := Open(eps[0], WithFailureHandler(func(peer int, err error) {
		failedPeer = peer
		close(failed)
	}))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Open(eps[1])
	if err != nil {
		t.Fatal(err)
	}
	defer d0.Close()
	defer d1.Close()

	buf := make([]byte, 4)
	rr, err := d0.Irecv(buf, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	eps[0].InjectError(1, errors.New("connection reset"))
	<-failed
	if failedPeer != 1 {
		t.Errorf("failure handler saw peer %d, want 1", failedPeer)
	}
	if _, err := rr.Wait(); !errors.Is(err, ErrPeerFailure) {
		t.Errorf("pending receive after failure: err=%v, want ErrPeerFailure", err)
	}
	if _, err := d0.Irecv(buf, 1, 0, 0); !errors.Is(err, ErrPeerFailure) {
		t.Errorf("new receive after failure: err=%v, want ErrPeerFailure", err)
	}
}

func TestCloseCompletesPendingRequests(t *testing.T) {
	ds := openMesh(t, 2)
	buf := make([]byte, 4)
	rr, err := ds[0].Irecv(buf, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ds[0].Close()
	if _, err := rr.Wait(); !errors.Is(err, ErrClosed) {
		t.Errorf("pending receive after close: err=%v, want ErrClosed", err)
	}
	if _, err := ds[0].Isend([]byte{1}, 1, 0, 0, ModeStandard); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: err=%v, want ErrClosed", err)
	}
}

func TestIsendIrecvArgumentValidation(t *testing.T) {
	ds := openMesh(t, 2)
	if _, err := ds[0].Isend(nil, 9, 0, 0, ModeStandard); err == nil {
		t.Error("Isend to out-of-range rank succeeded")
	}
	if _, err := ds[0].Irecv(nil, 9, 0, 0); err == nil {
		t.Error("Irecv from out-of-range rank succeeded")
	}
	if _, err := ds[0].Irecv(nil, AnySource, 0, 0); err != nil {
		t.Errorf("Irecv with AnySource failed: %v", err)
	}
}

func TestCustomEagerLimit(t *testing.T) {
	d0, d1 := openPair(t, WithEagerLimit(8))
	if d0.EagerLimit() != 8 {
		t.Fatalf("EagerLimit = %d", d0.EagerLimit())
	}
	buf := make([]byte, 9)
	rr, err := d1.Irecv(buf, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d0.Isend(payload(9, 11), 1, 0, 0, ModeStandard); err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	if d0.Stats().RTSSent.Load() != 1 {
		t.Error("9-byte message under 8-byte eager limit did not use rendezvous")
	}
}

// TestRandomizedTraffic drives a randomized all-to-all exchange across
// protocols, tags and sizes and checks every byte.
func TestRandomizedTraffic(t *testing.T) {
	const np = 4
	const msgsPerPair = 30
	ds := openMesh(t, np, WithEagerLimit(512))
	rng := rand.New(rand.NewSource(42))

	type msgSpec struct{ size, tag int }
	specs := make(map[[2]int][]msgSpec) // (src,dst) → ordered messages
	for s := 0; s < np; s++ {
		for r := 0; r < np; r++ {
			for k := 0; k < msgsPerPair; k++ {
				specs[[2]int{s, r}] = append(specs[[2]int{s, r}],
					msgSpec{size: 1 + rng.Intn(2048), tag: k})
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, np*2)
	for me := 0; me < np; me++ {
		me := me
		wg.Add(1)
		go func() { // sender side of rank me
			defer wg.Done()
			for dst := 0; dst < np; dst++ {
				for _, spec := range specs[[2]int{me, dst}] {
					msg := payload(spec.size, byte(me*31+spec.tag))
					mode := ModeStandard
					if spec.tag%5 == 4 {
						mode = ModeSync
					}
					r, err := ds[me].Isend(msg, dst, spec.tag, 0, mode)
					if err != nil {
						errs <- err
						return
					}
					if _, err := r.Wait(); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func() { // receiver side of rank me
			defer wg.Done()
			for src := 0; src < np; src++ {
				for _, spec := range specs[[2]int{src, me}] {
					buf := make([]byte, spec.size)
					r, err := ds[me].Irecv(buf, src, spec.tag, 0)
					if err != nil {
						errs <- err
						return
					}
					st, err := r.Wait()
					if err != nil {
						errs <- err
						return
					}
					want := payload(spec.size, byte(src*31+spec.tag))
					if st.Count != spec.size || !bytes.Equal(buf, want) {
						errs <- fmt.Errorf("corrupt %d->%d tag %d", src, me, spec.tag)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
