package serialize

import (
	"reflect"
	"testing"
	"testing/quick"
)

type point struct {
	X, Y float64
	Name string
}

func init() { Register(point{}) }

func TestObjectsRoundTrip(t *testing.T) {
	in := []any{
		42, "hello", 3.14, true,
		point{X: 1, Y: 2, Name: "p"},
		[]int{1, 2, 3},
		map[string]int{"a": 1},
	}
	Register([]int{})
	Register(map[string]int{})
	data, err := EncodeObjects(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeObjects(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
}

func TestEmptyObjects(t *testing.T) {
	data, err := EncodeObjects(nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeObjects(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("decoded %d elements from empty encode", len(out))
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeObjects([]byte("not a gob stream")); err == nil {
		t.Error("DecodeObjects accepted garbage")
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	f := func(xs []float64, s string, n int64) bool {
		type rec struct {
			Xs []float64
			S  string
			N  int64
		}
		in := rec{Xs: xs, S: s, N: n}
		data, err := EncodeValue(in)
		if err != nil {
			return false
		}
		var out rec
		if err := DecodeValue(data, &out); err != nil {
			return false
		}
		// gob encodes empty and nil slices identically; normalize.
		if len(in.Xs) == 0 && len(out.Xs) == 0 {
			return in.S == out.S && in.N == out.N
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObjectsRoundTripProperty(t *testing.T) {
	f := func(ints []int64, strs []string) bool {
		var in []any
		for _, v := range ints {
			in = append(in, v)
		}
		for _, s := range strs {
			in = append(in, s)
		}
		data, err := EncodeObjects(in)
		if err != nil {
			return false
		}
		out, err := DecodeObjects(data)
		if err != nil {
			return false
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
