// Package serialize provides object serialization for the MPJ OBJECT
// datatype and marshalling helpers for primitive arrays.
//
// The paper's MPJ relies on Java object serialization ("the new version
// 1.2 of the software supports direct communication of objects via object
// serialization"). encoding/gob is the Go analogue: self-describing,
// handles arbitrary object graphs, and — like Java serialization — costs
// noticeably more than moving primitive arrays, which experiment E7
// quantifies. As in Java (Serializable), user types must be registered
// before they can travel inside interface values: see Register.
//
// See ARCHITECTURE.md at the repository root for where this package sits in
// the layer stack.
package serialize

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Register records a concrete type so it can be transmitted as an OBJECT
// element. It is the analogue of implementing java.io.Serializable plus
// class loading: gob needs the concrete type known on both sides.
func Register(value any) { gob.Register(value) }

// EncodeObjects serializes a slice of arbitrary values into one gob stream.
func EncodeObjects(elems []any) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(len(elems)); err != nil {
		return nil, fmt.Errorf("serialize: encoding length: %w", err)
	}
	for i, e := range elems {
		if err := enc.Encode(&e); err != nil {
			return nil, fmt.Errorf("serialize: encoding element %d: %w", i, err)
		}
	}
	return buf.Bytes(), nil
}

// DecodeObjects deserializes a gob stream produced by EncodeObjects.
func DecodeObjects(data []byte) ([]any, error) {
	dec := gob.NewDecoder(bytes.NewReader(data))
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("serialize: decoding length: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("serialize: negative element count %d", n)
	}
	elems := make([]any, n)
	for i := range elems {
		if err := dec.Decode(&elems[i]); err != nil {
			return nil, fmt.Errorf("serialize: decoding element %d: %w", i, err)
		}
	}
	return elems, nil
}

// EncodeValue serializes one Go value (not boxed in an interface). It is
// used by the control plane (job specs, service records).
func EncodeValue(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeValue deserializes data produced by EncodeValue into v, which must
// be a pointer.
func DecodeValue(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	return nil
}
