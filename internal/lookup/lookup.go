// Package lookup implements the Jini-style lookup service of the paper's
// §3.2: MPJ daemons register themselves with available lookup services;
// independent clients discover daemons through them (Figure 2), with no
// "hosts" file required.
//
// Two discovery modes mirror the paper's Jini usage:
//
//   - group (multicast) discovery: registrars answer UDP probes on a
//     well-known port, so clients find them with no configuration;
//   - unicast discovery: clients are given explicit registrar addresses,
//     which also lets a user restrict the hosts a job may use.
//
// Registrations are leased: a daemon that dies silently disappears from
// the registrar once its lease expires.
//
// See ARCHITECTURE.md at the repository root for where this package sits in
// the layer stack.
package lookup

import (
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"mpj/internal/lease"
)

// DefaultDiscoveryPort is the UDP port registrars answer probes on.
const DefaultDiscoveryPort = 4160 // the Jini lookup locator port

// probe/reply magic for UDP discovery datagrams.
const (
	probeMagic = "MPJ-LOOKUP?"
	replyMagic = "MPJ-REGISTRAR "
)

// ServiceItem describes one registered service.
type ServiceItem struct {
	ID    string            // registrar-assigned id
	Type  string            // service type, e.g. "MPJService"
	Addr  string            // the service's RPC endpoint
	Host  string            // hostname, for placement decisions
	Attrs map[string]string // free-form attributes
}

// Template matches services in Lookup. Empty fields match anything.
type Template struct {
	Type string
	Host string
}

// matches reports whether item satisfies the template.
func (t Template) matches(item ServiceItem) bool {
	if t.Type != "" && t.Type != item.Type {
		return false
	}
	if t.Host != "" && t.Host != item.Host {
		return false
	}
	return true
}

// RPC request/reply shapes.
type (
	// RegisterReq registers an item under a lease.
	RegisterReq struct {
		Item    ServiceItem
		LeaseMs int64
	}
	// RegisterResp returns the item id and its registration lease.
	RegisterResp struct {
		ID      string
		LeaseID string
	}
	// RenewReq extends a registration lease.
	RenewReq struct {
		LeaseID string
		LeaseMs int64
	}
	// LookupReq finds services matching a template.
	LookupReq struct {
		Tmpl Template
	}
	// LookupResp carries the matches.
	LookupResp struct {
		Items []ServiceItem
	}
)

// registrarSvc is the RPC surface of a Registrar.
type registrarSvc struct{ r *Registrar }

// Register adds a service under a fresh lease.
func (s *registrarSvc) Register(req RegisterReq, resp *RegisterResp) error {
	return s.r.register(req, resp)
}

// Renew extends a registration lease.
func (s *registrarSvc) Renew(req RenewReq, _ *struct{}) error {
	_, err := s.r.leases.Renew(req.LeaseID, time.Duration(req.LeaseMs)*time.Millisecond)
	return err
}

// Cancel drops a registration.
func (s *registrarSvc) Cancel(req RenewReq, _ *struct{}) error {
	s.r.remove(req.LeaseID)
	return s.r.leases.Cancel(req.LeaseID)
}

// Lookup returns all services matching the template.
func (s *registrarSvc) Lookup(req LookupReq, resp *LookupResp) error {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	for _, it := range s.r.items {
		if req.Tmpl.matches(it) {
			resp.Items = append(resp.Items, it)
		}
	}
	return nil
}

// Registrar is a lookup service instance.
type Registrar struct {
	ln     net.Listener
	udp    *net.UDPConn
	leases *lease.Table

	mu     sync.Mutex
	items  map[string]ServiceItem // lease id → item
	nextID uint64
	closed bool
}

// NewRegistrar starts a registrar on an ephemeral TCP port. If udpPort is
// non-zero it also answers group-discovery probes on that UDP port.
func NewRegistrar(udpPort int) (*Registrar, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("lookup: %w", err)
	}
	r := &Registrar{ln: ln, items: make(map[string]ServiceItem)}
	r.leases = lease.NewTable(func(id string, payload any) { r.remove(id) })

	srv := rpc.NewServer()
	if err := srv.RegisterName("Registrar", &registrarSvc{r: r}); err != nil {
		ln.Close()
		return nil, fmt.Errorf("lookup: %w", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()

	if udpPort != 0 {
		addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: udpPort}
		udp, err := net.ListenUDP("udp", addr)
		if err != nil {
			ln.Close()
			r.leases.Close()
			return nil, fmt.Errorf("lookup: discovery port: %w", err)
		}
		r.udp = udp
		go r.answerProbes()
	}
	return r, nil
}

// Addr returns the registrar's RPC endpoint.
func (r *Registrar) Addr() string { return r.ln.Addr().String() }

// Count reports the number of live registrations.
func (r *Registrar) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

// Close shuts the registrar down.
func (r *Registrar) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.ln.Close()
	if r.udp != nil {
		r.udp.Close()
	}
	r.leases.Close()
}

func (r *Registrar) register(req RegisterReq, resp *RegisterResp) error {
	d := time.Duration(req.LeaseMs) * time.Millisecond
	if d <= 0 {
		return fmt.Errorf("lookup: non-positive lease %dms", req.LeaseMs)
	}
	info := r.leases.Grant(nil, d)
	r.mu.Lock()
	r.nextID++
	item := req.Item
	if item.ID == "" {
		item.ID = fmt.Sprintf("svc-%d", r.nextID)
	}
	r.items[info.ID] = item
	r.mu.Unlock()
	resp.ID = item.ID
	resp.LeaseID = info.ID
	return nil
}

func (r *Registrar) remove(leaseID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.items, leaseID)
}

// answerProbes replies to UDP discovery datagrams with this registrar's
// TCP endpoint.
func (r *Registrar) answerProbes() {
	buf := make([]byte, 256)
	for {
		n, from, err := r.udp.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if string(buf[:n]) != probeMagic {
			continue
		}
		reply := []byte(replyMagic + r.Addr())
		_, _ = r.udp.WriteToUDP(reply, from)
	}
}

// Client is a connection to one registrar.
type Client struct {
	addr string
	rpc  *rpc.Client
}

// Dial connects to a registrar.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("lookup: dialing registrar %s: %w", addr, err)
	}
	return &Client{addr: addr, rpc: rpc.NewClient(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() { c.rpc.Close() }

// Register registers an item with a lease of the given duration.
func (c *Client) Register(item ServiceItem, leaseDur time.Duration) (RegisterResp, error) {
	var resp RegisterResp
	err := c.rpc.Call("Registrar.Register", RegisterReq{Item: item, LeaseMs: leaseDur.Milliseconds()}, &resp)
	return resp, err
}

// Renew extends a registration lease.
func (c *Client) Renew(leaseID string, leaseDur time.Duration) error {
	return c.rpc.Call("Registrar.Renew", RenewReq{LeaseID: leaseID, LeaseMs: leaseDur.Milliseconds()}, &struct{}{})
}

// Cancel drops a registration.
func (c *Client) Cancel(leaseID string) error {
	return c.rpc.Call("Registrar.Cancel", RenewReq{LeaseID: leaseID}, &struct{}{})
}

// Lookup finds services matching the template.
func (c *Client) Lookup(tmpl Template) ([]ServiceItem, error) {
	var resp LookupResp
	if err := c.rpc.Call("Registrar.Lookup", LookupReq{Tmpl: tmpl}, &resp); err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// Discover finds registrar addresses. Unicast locators take precedence
// (and, as in Jini, restrict the search to exactly those); with none
// given, group discovery probes the UDP port and collects every registrar
// that answers within the timeout.
func Discover(locators []string, udpPort int, timeout time.Duration) ([]string, error) {
	if len(locators) > 0 {
		return append([]string(nil), locators...), nil
	}
	if udpPort == 0 {
		udpPort = DefaultDiscoveryPort
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("lookup: discovery socket: %w", err)
	}
	defer conn.Close()
	dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: udpPort}
	if _, err := conn.WriteToUDP([]byte(probeMagic), dst); err != nil {
		return nil, fmt.Errorf("lookup: sending probe: %w", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	var found []string
	buf := make([]byte, 256)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			break // deadline or socket closed ends collection
		}
		msg := string(buf[:n])
		if strings.HasPrefix(msg, replyMagic) {
			found = append(found, strings.TrimPrefix(msg, replyMagic))
		}
	}
	if len(found) == 0 {
		return nil, fmt.Errorf("lookup: no registrars answered group discovery on UDP port %d", udpPort)
	}
	return found, nil
}
