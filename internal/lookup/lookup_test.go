package lookup

import (
	"fmt"
	"testing"
	"time"

	"mpj/internal/events"
)

func newTestRegistrar(t *testing.T, udpPort int) *Registrar {
	t.Helper()
	r, err := NewRegistrar(udpPort)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestRegisterAndLookup(t *testing.T) {
	reg := newTestRegistrar(t, 0)
	c, err := Dial(reg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	item := ServiceItem{Type: "MPJService", Addr: "10.0.0.1:99", Host: "hostA",
		Attrs: map[string]string{"slots": "4"}}
	resp, err := c.Register(item, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID == "" || resp.LeaseID == "" {
		t.Fatalf("bad response %+v", resp)
	}

	items, err := c.Lookup(Template{Type: "MPJService"})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Addr != "10.0.0.1:99" || items[0].Attrs["slots"] != "4" {
		t.Fatalf("lookup = %+v", items)
	}

	// Non-matching templates.
	if items, _ := c.Lookup(Template{Type: "Other"}); len(items) != 0 {
		t.Errorf("type mismatch returned %v", items)
	}
	if items, _ := c.Lookup(Template{Host: "hostB"}); len(items) != 0 {
		t.Errorf("host mismatch returned %v", items)
	}
	if items, _ := c.Lookup(Template{Host: "hostA"}); len(items) != 1 {
		t.Errorf("host match returned %v", items)
	}
}

func TestRegistrationLeaseExpiry(t *testing.T) {
	reg := newTestRegistrar(t, 0)
	c, err := Dial(reg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Register(ServiceItem{Type: "MPJService"}, 40*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Count() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("registration did not expire")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRenewalAndCancel(t *testing.T) {
	reg := newTestRegistrar(t, 0)
	c, err := Dial(reg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Register(ServiceItem{Type: "MPJService"}, 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		time.Sleep(25 * time.Millisecond)
		if err := c.Renew(resp.LeaseID, 60*time.Millisecond); err != nil {
			t.Fatalf("renew: %v", err)
		}
	}
	if reg.Count() != 1 {
		t.Error("renewed registration lapsed")
	}
	if err := c.Cancel(resp.LeaseID); err != nil {
		t.Fatal(err)
	}
	if reg.Count() != 0 {
		t.Error("cancelled registration still present")
	}
}

func TestRejectsNonPositiveLease(t *testing.T) {
	reg := newTestRegistrar(t, 0)
	c, err := Dial(reg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Register(ServiceItem{Type: "X"}, 0); err == nil {
		t.Error("zero lease accepted")
	}
}

func TestUnicastDiscovery(t *testing.T) {
	addrs, err := Discover([]string{"a:1", "b:2"}, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != "a:1" {
		t.Fatalf("unicast discover = %v", addrs)
	}
}

func TestGroupDiscovery(t *testing.T) {
	const port = 41601
	reg := newTestRegistrar(t, port)
	addrs, err := Discover(nil, port, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != reg.Addr() {
		t.Fatalf("group discover = %v, want [%s]", addrs, reg.Addr())
	}
}

func TestGroupDiscoveryNoRegistrar(t *testing.T) {
	if _, err := Discover(nil, 41699, 100*time.Millisecond); err == nil {
		t.Error("discovery with no registrar succeeded")
	}
}

func TestMultipleServicesMultipleClients(t *testing.T) {
	reg := newTestRegistrar(t, 0)
	for i := 0; i < 5; i++ {
		c, err := Dial(reg.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Register(ServiceItem{
			Type: "MPJService",
			Addr: fmt.Sprintf("10.0.0.%d:1", i),
			Host: fmt.Sprintf("host%d", i),
		}, time.Minute); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	c, err := Dial(reg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	items, err := c.Lookup(Template{Type: "MPJService"})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("found %d services, want 5", len(items))
	}
}

// The events receiver lives in its own package; exercise the pair here to
// cover the cross-service path the daemon uses (lookup + events together).
func TestEventsDelivery(t *testing.T) {
	got := make(chan events.Event, 1)
	recv, err := events.NewReceiver(func(ev events.Event) { got <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	want := events.Event{Type: events.TypeAbort, JobID: 7, Source: "daemon X", Seq: 1, Message: "slave 3 died"}
	if err := events.Notify(recv.Addr(), want); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-got:
		if ev != want {
			t.Errorf("got %+v, want %+v", ev, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event not delivered")
	}
}

func TestNotifyUnreachableReceiver(t *testing.T) {
	err := events.Notify("127.0.0.1:1", events.Event{Type: events.TypeAbort})
	if err == nil {
		t.Error("notify to dead address succeeded")
	}
}
