package lease

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic expiry tests: no
// sweeper, no sleeps — time passes only when the test says so.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestClockPollExpiry: a lease expires exactly when the clock passes its
// deadline, and Poll delivers the expiry callback synchronously.
func TestClockPollExpiry(t *testing.T) {
	clk := newFakeClock()
	var expired []any
	tbl := NewTableWithClock(func(id string, payload any) {
		expired = append(expired, payload)
	}, clk.now)
	defer tbl.Close()

	tbl.Grant("slave-3", 10*time.Second)

	clk.advance(9 * time.Second)
	if n := tbl.Poll(); n != 0 {
		t.Fatalf("Poll before deadline expired %d leases, want 0", n)
	}
	if len(expired) != 0 {
		t.Fatalf("callback fired before deadline: %v", expired)
	}

	clk.advance(2 * time.Second)
	if n := tbl.Poll(); n != 1 {
		t.Fatalf("Poll past deadline expired %d leases, want 1", n)
	}
	if len(expired) != 1 || expired[0] != "slave-3" {
		t.Fatalf("expired payloads = %v, want [slave-3]", expired)
	}
	if tbl.Len() != 0 {
		t.Fatalf("table still holds %d leases after expiry", tbl.Len())
	}
	// A second poll finds nothing: expiry is once.
	if n := tbl.Poll(); n != 0 {
		t.Fatalf("re-Poll expired %d more leases, want 0", n)
	}
}

// TestClockRenewalNoFalsePositive: a renewal that lands before the
// deadline always postpones expiry — the landlord never declares a
// punctual holder dead, which is the accuracy the failure detector
// demands of the lease layer.
func TestClockRenewalNoFalsePositive(t *testing.T) {
	clk := newFakeClock()
	fired := 0
	tbl := NewTableWithClock(func(id string, payload any) { fired++ }, clk.now)
	defer tbl.Close()

	info := tbl.Grant(7, 10*time.Second)

	// Renew repeatedly just ahead of the deadline; no poll may expire it.
	for i := 0; i < 50; i++ {
		clk.advance(10*time.Second - time.Millisecond)
		if n := tbl.Poll(); n != 0 {
			t.Fatalf("iteration %d: punctual holder expired (%d leases)", i, n)
		}
		if _, err := tbl.Renew(info.ID, 10*time.Second); err != nil {
			t.Fatalf("iteration %d: renew: %v", i, err)
		}
	}
	if fired != 0 {
		t.Fatalf("expiry callback fired %d times for a punctual holder", fired)
	}

	// Stop renewing: one interval later the lease lapses.
	clk.advance(10*time.Second + time.Millisecond)
	if n := tbl.Poll(); n != 1 {
		t.Fatalf("lapsed lease: Poll expired %d, want 1", n)
	}
	if fired != 1 {
		t.Fatalf("expiry callback fired %d times, want 1", fired)
	}

	// The lease is gone: a late renewal reports the unknown lease instead
	// of resurrecting it.
	if _, err := tbl.Renew(info.ID, 10*time.Second); err == nil {
		t.Fatal("renew after expiry succeeded")
	}
}

// TestClockCancelSkipsCallback: a deliberate cancellation never reports
// an expiry, even after the deadline passes.
func TestClockCancelSkipsCallback(t *testing.T) {
	clk := newFakeClock()
	fired := 0
	tbl := NewTableWithClock(func(id string, payload any) { fired++ }, clk.now)
	defer tbl.Close()

	info := tbl.Grant("res", 5*time.Second)
	if err := tbl.Cancel(info.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	clk.advance(time.Hour)
	if n := tbl.Poll(); n != 0 || fired != 0 {
		t.Fatalf("cancelled lease expired (n=%d, fired=%d)", n, fired)
	}
}
