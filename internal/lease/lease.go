// Package lease implements the Jini-style leasing paradigm the paper
// leans on for fault tolerance (§3.4): every remotely held resource is
// granted for a bounded interval and reclaimed unless its holder keeps
// renewing. The client leases daemon services for the life of a job; a
// daemon leases its own slaves. If a client dies, its leases expire and
// orphaned slaves are destroyed; if a daemon dies, its slaves' leases
// expire and they self-destruct.
//
// Table is the grantor ("landlord") side; Renewer is the holder side.
//
// See ARCHITECTURE.md at the repository root for where this package sits in
// the layer stack.
package lease

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrUnknownLease reports a renew or cancel of a lease that does not
// exist (never granted, expired, or already cancelled).
var ErrUnknownLease = errors.New("lease: unknown lease")

// Info describes a granted lease to its holder.
type Info struct {
	ID         string
	Expiration time.Time
}

// grant is the landlord's record of one lease.
type grant struct {
	id         string
	payload    any
	expiration time.Time
}

// Table grants and expires leases. When a lease expires (is not renewed
// in time), the onExpire callback receives its payload; cancellation does
// not trigger the callback.
type Table struct {
	onExpire func(id string, payload any)
	now      func() time.Time

	mu     sync.Mutex
	leases map[string]*grant
	nextID uint64
	closed bool
	wake   chan struct{}
}

// NewTable creates a lease table. onExpire may be nil.
func NewTable(onExpire func(id string, payload any)) *Table {
	t := &Table{
		onExpire: onExpire,
		now:      time.Now,
		leases:   make(map[string]*grant),
		wake:     make(chan struct{}, 1),
	}
	go t.sweep()
	return t
}

// NewTableWithClock creates a lease table driven by an injected clock and
// no background sweeper: time passes only as the clock function says, and
// leases expire only when Poll is called. Built for deterministic tests —
// expiry races can be exercised without a single real sleep.
func NewTableWithClock(onExpire func(id string, payload any), now func() time.Time) *Table {
	return &Table{
		onExpire: onExpire,
		now:      now,
		leases:   make(map[string]*grant),
		wake:     make(chan struct{}, 1),
	}
}

// Poll expires every lease whose deadline has passed on the table's
// clock, invoking the expiry callback synchronously, and reports how many
// expired. The background sweeper of a NewTable table does this on its
// own; clock-driven tables advance only through Poll.
func (t *Table) Poll() int {
	expired, _ := t.expire()
	cb := t.onExpire
	if cb != nil {
		for _, g := range expired {
			cb(g.id, g.payload)
		}
	}
	return len(expired)
}

// expire removes every overdue lease and returns them plus the next
// pending deadline (an hour out when no lease is closer).
func (t *Table) expire() (expired []*grant, next time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	next = now.Add(time.Hour)
	for id, g := range t.leases {
		if !g.expiration.After(now) {
			expired = append(expired, g)
			delete(t.leases, id)
		} else if g.expiration.Before(next) {
			next = g.expiration
		}
	}
	return expired, next
}

// Grant issues a new lease on payload for duration d.
func (t *Table) Grant(payload any, d time.Duration) Info {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	g := &grant{
		id:         fmt.Sprintf("lease-%d", t.nextID),
		payload:    payload,
		expiration: t.now().Add(d),
	}
	t.leases[g.id] = g
	t.kick()
	return Info{ID: g.id, Expiration: g.expiration}
}

// Renew extends the lease by d from now.
func (t *Table) Renew(id string, d time.Duration) (Info, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.leases[id]
	if !ok {
		return Info{}, fmt.Errorf("%w: %s", ErrUnknownLease, id)
	}
	g.expiration = t.now().Add(d)
	t.kick()
	return Info{ID: id, Expiration: g.expiration}, nil
}

// Cancel ends the lease without invoking the expiry callback — the holder
// released the resource deliberately.
func (t *Table) Cancel(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.leases[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLease, id)
	}
	delete(t.leases, id)
	return nil
}

// Len reports the number of live leases.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.leases)
}

// Close stops the expiry sweeper. Outstanding leases are dropped without
// expiry callbacks.
func (t *Table) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		t.kick()
	}
}

// kick wakes the sweeper; callers hold t.mu.
func (t *Table) kick() {
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// sweep expires leases as their deadlines pass.
func (t *Table) sweep() {
	for {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		expired, next := t.expire()
		if cb := t.onExpire; cb != nil {
			for _, g := range expired {
				cb(g.id, g.payload)
			}
		}

		timer := time.NewTimer(time.Until(next))
		select {
		case <-t.wake:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// Renewer keeps one lease alive by invoking a renew function at half the
// lease interval, the standard Jini LeaseRenewalManager discipline. If a
// renewal fails, onFail is called once and renewal stops: the resource on
// the other side will lapse, which is exactly the recovery the paper's
// failure model wants.
type Renewer struct {
	stop    chan struct{}
	stopped atomic.Bool
	done    chan struct{}
}

// NewRenewer starts renewing immediately. renew is called every interval/2
// with the full interval to request; onFail may be nil.
func NewRenewer(interval time.Duration, renew func(time.Duration) error, onFail func(error)) *Renewer {
	r := &Renewer{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		tick := time.NewTicker(interval / 2)
		defer tick.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-tick.C:
				if err := renew(interval); err != nil {
					if onFail != nil {
						onFail(err)
					}
					return
				}
			}
		}
	}()
	return r
}

// Stop ends renewal (the holder is done with the resource).
func (r *Renewer) Stop() {
	if r.stopped.CompareAndSwap(false, true) {
		close(r.stop)
	}
	<-r.done
}
