package lease

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGrantRenewCancel(t *testing.T) {
	var expired atomic.Int32
	tbl := NewTable(func(id string, payload any) { expired.Add(1) })
	defer tbl.Close()

	info := tbl.Grant("res", 100*time.Millisecond)
	if info.ID == "" || !info.Expiration.After(time.Now()) {
		t.Fatalf("bad lease info %+v", info)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
	if _, err := tbl.Renew(info.ID, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Cancel(info.ID); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("len after cancel = %d", tbl.Len())
	}
	time.Sleep(150 * time.Millisecond)
	if expired.Load() != 0 {
		t.Error("cancelled lease fired expiry callback")
	}
}

func TestExpiryFiresCallback(t *testing.T) {
	type res struct{ name string }
	got := make(chan any, 1)
	tbl := NewTable(func(id string, payload any) { got <- payload })
	defer tbl.Close()

	tbl.Grant(res{name: "slave-3"}, 30*time.Millisecond)
	select {
	case p := <-got:
		if p.(res).name != "slave-3" {
			t.Errorf("payload %+v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lease did not expire")
	}
	if tbl.Len() != 0 {
		t.Errorf("expired lease still in table")
	}
}

func TestRenewalPreventsExpiry(t *testing.T) {
	var expired atomic.Int32
	tbl := NewTable(func(id string, payload any) { expired.Add(1) })
	defer tbl.Close()

	info := tbl.Grant(nil, 60*time.Millisecond)
	for i := 0; i < 8; i++ {
		time.Sleep(25 * time.Millisecond)
		if _, err := tbl.Renew(info.ID, 60*time.Millisecond); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if expired.Load() != 0 {
		t.Error("renewed lease expired")
	}
	time.Sleep(150 * time.Millisecond)
	if expired.Load() != 1 {
		t.Errorf("lease did not expire after renewals stopped (count=%d)", expired.Load())
	}
}

func TestUnknownLeaseErrors(t *testing.T) {
	tbl := NewTable(nil)
	defer tbl.Close()
	if _, err := tbl.Renew("nope", time.Second); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("renew unknown: %v", err)
	}
	if err := tbl.Cancel("nope"); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("cancel unknown: %v", err)
	}
}

func TestManyLeasesIndependentExpiry(t *testing.T) {
	var mu sync.Mutex
	expired := map[string]bool{}
	tbl := NewTable(func(id string, payload any) {
		mu.Lock()
		expired[payload.(string)] = true
		mu.Unlock()
	})
	defer tbl.Close()

	short := tbl.Grant("short", 30*time.Millisecond)
	long := tbl.Grant("long", 10*time.Second)
	_ = short
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if !expired["short"] {
		t.Error("short lease did not expire")
	}
	if expired["long"] {
		t.Error("long lease expired early")
	}
	_ = long
}

func TestRenewerKeepsLeaseAlive(t *testing.T) {
	tbl := NewTable(nil)
	defer tbl.Close()
	info := tbl.Grant(nil, 80*time.Millisecond)

	r := NewRenewer(80*time.Millisecond, func(d time.Duration) error {
		_, err := tbl.Renew(info.ID, d)
		return err
	}, nil)
	time.Sleep(400 * time.Millisecond)
	if tbl.Len() != 1 {
		t.Error("renewer failed to keep lease alive")
	}
	r.Stop()
}

func TestRenewerReportsFailure(t *testing.T) {
	failed := make(chan error, 1)
	r := NewRenewer(20*time.Millisecond, func(d time.Duration) error {
		return errors.New("registrar gone")
	}, func(err error) { failed <- err })
	defer r.Stop()
	select {
	case <-failed:
	case <-time.After(5 * time.Second):
		t.Fatal("renewer did not report failure")
	}
}

func TestRenewerStopIsIdempotent(t *testing.T) {
	r := NewRenewer(time.Hour, func(d time.Duration) error { return nil }, nil)
	r.Stop()
	r.Stop()
}
