package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"mpj/internal/wire"
)

// tcpMagic begins every mesh handshake so that stray connections are
// rejected instead of corrupting the frame stream.
const tcpMagic uint32 = 0x4d504a31 // "MPJ1"

// BootstrapTimeout bounds how long mesh establishment may take: dial
// retries and accepts both give up after this long.
var BootstrapTimeout = 30 * time.Second

// TCPTransport is the distributed Transport: an all-to-all TCP mesh
// between the OS processes of a job, one reader goroutine per inbound
// connection (the paper's "input handler threads") and one writer goroutine
// per peer draining an unbounded send queue.
type TCPTransport struct {
	rank   int
	size   int
	jobID  uint64
	conns  []net.Conn // conns[peer]; nil at self index
	queues []*sendQueue

	handler Handler
	errh    ErrorHandler

	mu      sync.Mutex
	started bool
	closed  bool
	goodbye []bool // peer sent an orderly GOODBYE
	wg      sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport establishes the all-to-all mesh for one rank.
//
// addrs[i] is the address rank i listens on; ln is this rank's own
// listener (its address must be addrs[rank]). The mesh forms with the
// deterministic convention that rank i dials every lower rank and accepts
// from every higher rank. jobID guards against connections from other jobs.
//
// NewTCPTransport returns once connections to all size-1 peers are
// established and verified. The listener is not closed; the caller owns it.
func NewTCPTransport(rank int, jobID uint64, addrs []string, ln net.Listener) (*TCPTransport, error) {
	return NewTCPMesh(rank, jobID, addrs, ln, nil)
}

// NewTCPMesh is NewTCPTransport with a skip set: no connection is made to
// (or accepted from) peers with skip[peer] true, and sends to them fail
// with ErrClosed. The hybrid device uses this to leave co-located ranks —
// reached over the in-process channel mesh instead — out of the TCP mesh.
// All ranks of a job must agree on the skip set; it is derived from the
// job's locality table, which every rank receives identically. A nil skip
// builds the full mesh.
func NewTCPMesh(rank int, jobID uint64, addrs []string, ln net.Listener, skip []bool) (*TCPTransport, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("transport: rank %d out of range for %d addrs", rank, size)
	}
	skipped := func(peer int) bool { return peer < len(skip) && skip[peer] }
	t := &TCPTransport{
		rank:    rank,
		size:    size,
		jobID:   jobID,
		conns:   make([]net.Conn, size),
		queues:  make([]*sendQueue, size),
		goodbye: make([]bool, size),
	}
	for i := range t.queues {
		t.queues[i] = newSendQueue()
		if skipped(i) && i != rank {
			// No connection will exist: fail sends immediately rather
			// than queueing frames nobody drains. The loopback queue
			// (i == rank) always stays open.
			t.queues[i].close()
		}
	}

	deadline := time.Now().Add(BootstrapTimeout)

	// Dial lower ranks and accept from higher ranks concurrently: with
	// sequential dialing, two middle ranks could otherwise wait on each
	// other's accept loops.
	var dialErr, acceptErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for peer := 0; peer < rank; peer++ {
			if skipped(peer) {
				continue
			}
			conn, err := dialPeer(addrs[peer], rank, jobID, deadline)
			if err != nil {
				dialErr = fmt.Errorf("transport: rank %d dialing rank %d at %s: %w", rank, peer, addrs[peer], err)
				return
			}
			t.conns[peer] = conn
		}
	}()

	need := 0
	for peer := rank + 1; peer < size; peer++ {
		if !skipped(peer) {
			need++
		}
	}
	for got := 0; got < need; {
		type deadliner interface{ SetDeadline(time.Time) error }
		if d, ok := ln.(deadliner); ok {
			_ = d.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			acceptErr = fmt.Errorf("transport: rank %d accepting peers: %w", rank, err)
			break
		}
		peer, err := readHello(conn, jobID)
		if err != nil || peer <= rank || peer >= size || skipped(peer) || t.conns[peer] != nil {
			// Stray, duplicate, or cross-job connection: drop it and
			// keep accepting. The legitimate peer will still arrive.
			conn.Close()
			continue
		}
		t.conns[peer] = conn
		got++
	}
	wg.Wait()
	if dialErr != nil || acceptErr != nil {
		t.closeConns()
		if dialErr != nil {
			return nil, dialErr
		}
		return nil, acceptErr
	}
	return t, nil
}

// dialPeer connects to a peer's listener, retrying until the deadline so
// that ranks whose listeners come up at slightly different times still
// mesh. The hello message identifies the dialing rank and job.
func dialPeer(addr string, rank int, jobID uint64, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for backoff := 5 * time.Millisecond; time.Now().Before(deadline); backoff = min(2*backoff, 250*time.Millisecond) {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			if err := writeHello(conn, rank, jobID); err == nil {
				return conn, nil
			} else {
				conn.Close()
				lastErr = err
			}
		} else {
			lastErr = err
		}
		time.Sleep(backoff)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("bootstrap deadline exceeded")
	}
	return nil, lastErr
}

func writeHello(conn net.Conn, rank int, jobID uint64) error {
	var hello [16]byte
	binary.LittleEndian.PutUint32(hello[0:], tcpMagic)
	binary.LittleEndian.PutUint32(hello[4:], uint32(rank))
	binary.LittleEndian.PutUint64(hello[8:], jobID)
	_, err := conn.Write(hello[:])
	return err
}

func readHello(conn net.Conn, jobID uint64) (int, error) {
	var hello [16]byte
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return -1, err
	}
	_ = conn.SetReadDeadline(time.Time{})
	if binary.LittleEndian.Uint32(hello[0:]) != tcpMagic {
		return -1, fmt.Errorf("transport: bad handshake magic")
	}
	if binary.LittleEndian.Uint64(hello[8:]) != jobID {
		return -1, fmt.Errorf("transport: handshake from foreign job")
	}
	return int(binary.LittleEndian.Uint32(hello[4:])), nil
}

func (t *TCPTransport) closeConns() {
	for _, c := range t.conns {
		if c != nil {
			c.Close()
		}
	}
}

// Rank returns this endpoint's rank.
func (t *TCPTransport) Rank() int { return t.rank }

// DeviceName identifies the transport flavor for measured tuning tables.
func (t *TCPTransport) DeviceName() string { return "tcp" }

// Size returns the number of ranks in the mesh.
func (t *TCPTransport) Size() int { return t.size }

// SetHandler installs the inbound frame handler.
func (t *TCPTransport) SetHandler(h Handler) { t.handler = h }

// SetErrorHandler installs the peer-failure handler.
func (t *TCPTransport) SetErrorHandler(h ErrorHandler) { t.errh = h }

// Send enqueues frame for delivery to dst. It never blocks.
func (t *TCPTransport) Send(dst int, frame []byte) error {
	if dst < 0 || dst >= t.size {
		return ErrBadRank
	}
	if !t.queues[dst].push(frame) {
		return ErrClosed
	}
	return nil
}

// Start launches one reader goroutine per inbound connection and one
// writer goroutine per peer.
func (t *TCPTransport) Start() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return ErrStarted
	}
	if t.handler == nil {
		return ErrNoHandler
	}
	t.started = true

	for peer := range t.conns {
		peer := peer
		if peer == t.rank {
			// Loopback: the writer delivers straight to the handler.
			q := t.queues[peer]
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				for {
					frame, ok := q.pop()
					if !ok {
						return
					}
					t.handler(t.rank, frame)
					q.delivered()
				}
			}()
			continue
		}
		conn := t.conns[peer]
		if conn == nil {
			// Skipped peer (see NewTCPMesh): no connection, no goroutines.
			continue
		}

		// Reader: the paper's one input-handler thread per connection.
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			r := bufio.NewReaderSize(conn, 1<<16)
			for {
				frame, err := wire.ReadFrame(r)
				if err != nil {
					t.reportPeerError(peer, err)
					return
				}
				var h wire.Header
				if err := h.Decode(frame); err != nil {
					t.reportPeerError(peer, err)
					return
				}
				if h.Kind == wire.KindGoodbye {
					t.mu.Lock()
					t.goodbye[peer] = true
					t.mu.Unlock()
					return
				}
				t.handler(peer, frame)
			}
		}()

		// Writer: drains the unbounded queue into the socket, batching
		// flushes while the queue stays non-empty. Once a frame's bytes
		// are in the socket (or the connection is dead and the frame is
		// dropped), the frame goes back to the pool — the writer is the
		// frame's final owner on the remote path.
		q := t.queues[peer]
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			w := bufio.NewWriterSize(conn, 1<<16)
			var dead bool
			for {
				frame, ok := q.pop()
				if !ok {
					w.Flush()
					return
				}
				if !dead {
					err := wire.WriteFrame(w, frame)
					if err == nil && q.len() == 0 {
						err = w.Flush()
					}
					if err != nil {
						dead = true
						t.reportPeerError(peer, err)
					}
				}
				wire.PutBuf(frame)
				q.delivered()
			}
		}()
	}
	return nil
}

// reportPeerError forwards a connection failure to the error handler unless
// the failure is part of an orderly shutdown.
func (t *TCPTransport) reportPeerError(peer int, err error) {
	t.mu.Lock()
	suppress := t.closed || t.goodbye[peer]
	t.mu.Unlock()
	if suppress || isClosedConn(err) {
		return
	}
	if t.errh != nil {
		t.errh(peer, err)
	}
}

// isClosedConn reports whether err resulted from closing our own socket.
func isClosedConn(err error) bool {
	return err != nil && strings.Contains(err.Error(), "use of closed network connection")
}

// Drain blocks until every accepted frame has been written and flushed to
// its socket (or handed to the loopback handler).
func (t *TCPTransport) Drain() {
	for _, q := range t.queues {
		q.waitIdle()
	}
}

// Abort tears the mesh down without goodbyes: peers see broken
// connections and report the failure through their error handlers, which
// is how application failure on this rank becomes visible job-wide.
func (t *TCPTransport) Abort() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	started := t.started
	t.mu.Unlock()
	for _, q := range t.queues {
		q.close()
	}
	t.closeConns()
	if started {
		t.wg.Wait()
	}
}

// Close performs an orderly shutdown: drain all outbound queues, tell every
// peer goodbye, then close the sockets and join all goroutines.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	if !t.started {
		t.closed = true
		t.mu.Unlock()
		t.closeConns()
		return nil
	}
	t.mu.Unlock()

	t.Drain()

	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()

	// One goodbye frame per connected peer: the writers release frames to
	// the pool after writing them, so the frame must not be shared.
	for peer, q := range t.queues {
		if peer != t.rank && t.conns[peer] != nil {
			q.push(wire.NewFrame(&wire.Header{Kind: wire.KindGoodbye, Src: int32(t.rank)}, nil))
		}
	}
	for _, q := range t.queues {
		q.close()
	}
	// Writers flush the goodbye frames before exiting; give readers their
	// EOFs by closing the sockets after the queues drain.
	for _, q := range t.queues {
		q.waitIdle()
	}
	t.closeConns()
	t.wg.Wait()
	return nil
}
