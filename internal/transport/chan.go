package transport

import (
	"fmt"
	"sync"
)

// inItem is one frame in flight inside a channel mesh.
type inItem struct {
	src   int
	frame []byte
}

// ChanTransport is an in-process Transport. A mesh of np endpoints shares
// np inbox channels; endpoint i owns inboxes[i]. One demux goroutine per
// endpoint plays the role of the paper's input-handler thread; one writer
// goroutine per destination drains the unbounded send queues.
//
// ChanTransport lets an entire MPJ job — all ranks — run inside a single
// test process with the exact same device and API layers that run over TCP.
type ChanTransport struct {
	rank    int
	size    int
	inboxes []chan inItem
	queues  []*sendQueue
	handler Handler
	errh    ErrorHandler

	mu      sync.Mutex
	started bool
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

var _ Transport = (*ChanTransport)(nil)

// chanInboxDepth is the buffering of each inbox channel. It only affects
// scheduling granularity: the unbounded send queues absorb any burst.
const chanInboxDepth = 256

// NewChanMesh creates a fully connected in-process mesh of np endpoints.
// Endpoint i of the returned slice must be used by rank i only.
func NewChanMesh(np int) []*ChanTransport {
	if np <= 0 {
		panic(fmt.Sprintf("transport: NewChanMesh(%d): np must be positive", np))
	}
	inboxes := make([]chan inItem, np)
	for i := range inboxes {
		inboxes[i] = make(chan inItem, chanInboxDepth)
	}
	eps := make([]*ChanTransport, np)
	for i := range eps {
		queues := make([]*sendQueue, np)
		for j := range queues {
			queues[j] = newSendQueue()
		}
		eps[i] = &ChanTransport{
			rank:    i,
			size:    np,
			inboxes: inboxes,
			queues:  queues,
			stop:    make(chan struct{}),
		}
	}
	return eps
}

// Rank returns the endpoint's rank in the mesh.
func (t *ChanTransport) Rank() int { return t.rank }

// Size returns the number of endpoints in the mesh.
func (t *ChanTransport) Size() int { return t.size }

// Local reports whether dst shares this process's address space. Every
// endpoint of a channel mesh lives in one process, so any valid rank is
// local. The device layer consults this (optional) method to pick the
// direct-memory path for one-sided operations.
func (t *ChanTransport) Local(dst int) bool { return dst >= 0 && dst < t.size }

// DeviceName identifies the transport flavor for measured tuning tables.
func (t *ChanTransport) DeviceName() string { return "chan" }

// SetHandler installs the inbound frame handler.
func (t *ChanTransport) SetHandler(h Handler) { t.handler = h }

// SetErrorHandler installs the peer failure handler. The channel mesh never
// fails spontaneously, but tests inject failures through it.
func (t *ChanTransport) SetErrorHandler(h ErrorHandler) { t.errh = h }

// InjectError invokes the error handler as if peer's connection had failed.
// It exists for failure-injection tests.
func (t *ChanTransport) InjectError(peer int, err error) {
	if t.errh != nil {
		t.errh(peer, err)
	}
}

// Send enqueues frame for delivery to dst. It never blocks.
func (t *ChanTransport) Send(dst int, frame []byte) error {
	if dst < 0 || dst >= t.size {
		return ErrBadRank
	}
	if !t.queues[dst].push(frame) {
		return ErrClosed
	}
	return nil
}

// Start launches the demux goroutine and one writer per destination.
func (t *ChanTransport) Start() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return ErrStarted
	}
	if t.handler == nil {
		return ErrNoHandler
	}
	t.started = true

	// Demux: the single "input handler" goroutine of this endpoint.
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			select {
			case it := <-t.inboxes[t.rank]:
				t.handler(it.src, it.frame)
			case <-t.stop:
				// Drain whatever is already buffered so orderly
				// shutdowns do not drop frames.
				for {
					select {
					case it := <-t.inboxes[t.rank]:
						t.handler(it.src, it.frame)
					default:
						return
					}
				}
			}
		}
	}()

	// Writers: one per destination, draining the unbounded queues. A
	// writer blocked on a full inbox gives up when the endpoint stops:
	// a correct MPJ program has completed all communication (and hence
	// emptied these queues) before the endpoint is closed, so only
	// frames of erroneous unmatched sends can be dropped here.
	for dst := range t.queues {
		dst := dst
		q := t.queues[dst]
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for {
				frame, ok := q.pop()
				if !ok {
					return
				}
				select {
				case t.inboxes[dst] <- inItem{src: t.rank, frame: frame}:
				case <-t.stop:
				}
				q.delivered()
			}
		}()
	}
	return nil
}

// Drain blocks until all accepted frames have been pushed into their
// destination inboxes.
func (t *ChanTransport) Drain() {
	for _, q := range t.queues {
		q.waitIdle()
	}
}

// Close drains the outbound queues, then stops the writers and the demux
// goroutine. Draining first matters: a rank may complete (say) a barrier
// while its final frame to a peer is still queued, and that frame is what
// completes the peer's barrier. Frames already in this endpoint's inbox are
// handed to the handler before the demux goroutine exits.
func (t *ChanTransport) Close() error {
	return t.shutdown(true)
}

// Abort stops the endpoint without draining. In-process meshes have no
// connection state for peers to observe, so failure propagation across an
// in-process job is the caller's responsibility (RunLocal closes every
// endpoint of the mesh).
func (t *ChanTransport) Abort() { _ = t.shutdown(false) }

func (t *ChanTransport) shutdown(drain bool) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	started := t.started
	t.mu.Unlock()

	if started && drain {
		t.Drain()
	}
	for _, q := range t.queues {
		q.close()
	}
	close(t.stop)
	if started {
		t.wg.Wait()
	}
	return nil
}
