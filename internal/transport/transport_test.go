package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mpj/internal/wire"
)

// mkFrame builds a uniquely identifiable test frame.
func mkFrame(src, seq int, payload string) []byte {
	h := wire.Header{
		Kind: wire.KindEager,
		Src:  int32(src),
		Seq:  uint64(seq),
		Len:  int32(len(payload)),
	}
	return wire.NewFrame(&h, []byte(payload))
}

// collector accumulates frames delivered to one endpoint.
type collector struct {
	mu     sync.Mutex
	frames []struct {
		src   int
		frame []byte
	}
	signal chan struct{}
}

func newCollector() *collector {
	return &collector{signal: make(chan struct{}, 1<<16)}
}

func (c *collector) handle(src int, frame []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, struct {
		src   int
		frame []byte
	}{src, frame})
	c.mu.Unlock()
	c.signal <- struct{}{}
}

func (c *collector) waitN(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.signal:
		case <-deadline:
			c.mu.Lock()
			got := len(c.frames)
			c.mu.Unlock()
			t.Fatalf("timed out waiting for %d frames, got %d", n, got)
		}
	}
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// startChanMesh builds and starts an np-endpoint channel mesh with one
// collector per endpoint.
func startChanMesh(t *testing.T, np int) ([]*ChanTransport, []*collector) {
	t.Helper()
	eps := NewChanMesh(np)
	cols := make([]*collector, np)
	for i, ep := range eps {
		cols[i] = newCollector()
		ep.SetHandler(cols[i].handle)
		if err := ep.Start(); err != nil {
			t.Fatalf("Start rank %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps, cols
}

func TestChanMeshAllToAll(t *testing.T) {
	const np = 4
	eps, cols := startChanMesh(t, np)
	for i, ep := range eps {
		for j := 0; j < np; j++ {
			if err := ep.Send(j, mkFrame(i, 0, fmt.Sprintf("%d->%d", i, j))); err != nil {
				t.Fatalf("Send %d->%d: %v", i, j, err)
			}
		}
	}
	for j, col := range cols {
		col.waitN(t, np)
		col.mu.Lock()
		seen := map[int]bool{}
		for _, f := range col.frames {
			seen[f.src] = true
			want := fmt.Sprintf("%d->%d", f.src, j)
			if got := string(wire.Payload(f.frame)); got != want {
				t.Errorf("rank %d got payload %q, want %q", j, got, want)
			}
		}
		col.mu.Unlock()
		if len(seen) != np {
			t.Errorf("rank %d heard from %d distinct sources, want %d", j, len(seen), np)
		}
	}
}

func TestChanMeshOrderingPerPath(t *testing.T) {
	const n = 2000
	eps, cols := startChanMesh(t, 2)
	for s := 0; s < n; s++ {
		if err := eps[0].Send(1, mkFrame(0, s, "")); err != nil {
			t.Fatal(err)
		}
	}
	cols[1].waitN(t, n)
	cols[1].mu.Lock()
	defer cols[1].mu.Unlock()
	for i, f := range cols[1].frames {
		var h wire.Header
		if err := h.Decode(f.frame); err != nil {
			t.Fatal(err)
		}
		if h.Seq != uint64(i) {
			t.Fatalf("frame %d has seq %d: ordering violated", i, h.Seq)
		}
	}
}

func TestChanMeshSelfSend(t *testing.T) {
	eps, cols := startChanMesh(t, 2)
	if err := eps[0].Send(0, mkFrame(0, 7, "self")); err != nil {
		t.Fatal(err)
	}
	cols[0].waitN(t, 1)
	cols[0].mu.Lock()
	defer cols[0].mu.Unlock()
	if cols[0].frames[0].src != 0 {
		t.Errorf("self frame src = %d, want 0", cols[0].frames[0].src)
	}
	if got := string(wire.Payload(cols[0].frames[0].frame)); got != "self" {
		t.Errorf("self frame payload = %q", got)
	}
}

func TestChanMeshSendErrors(t *testing.T) {
	eps := NewChanMesh(2)
	eps[0].SetHandler(func(int, []byte) {})
	eps[1].SetHandler(func(int, []byte) {})
	if err := eps[0].Send(5, nil); err != ErrBadRank {
		t.Errorf("out-of-range send: got %v, want ErrBadRank", err)
	}
	if err := eps[0].Send(-1, nil); err != ErrBadRank {
		t.Errorf("negative send: got %v, want ErrBadRank", err)
	}
	if err := eps[0].Start(); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Start(); err != ErrStarted {
		t.Errorf("double Start: got %v, want ErrStarted", err)
	}
	eps[0].Close()
	eps[1].Close()
	if err := eps[0].Send(1, mkFrame(0, 0, "x")); err != ErrClosed {
		t.Errorf("send after close: got %v, want ErrClosed", err)
	}
}

func TestChanMeshStartWithoutHandler(t *testing.T) {
	eps := NewChanMesh(1)
	if err := eps[0].Start(); err != ErrNoHandler {
		t.Errorf("Start without handler: got %v, want ErrNoHandler", err)
	}
}

func TestChanMeshCloseDrainsOutbound(t *testing.T) {
	// A sender that closes immediately after Send must still deliver:
	// Close drains the outbound queues first.
	eps := NewChanMesh(2)
	col := newCollector()
	eps[0].SetHandler(func(int, []byte) {})
	eps[1].SetHandler(col.handle)
	for _, ep := range eps {
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
	}
	const n = 500
	for s := 0; s < n; s++ {
		if err := eps[0].Send(1, mkFrame(0, s, "burst")); err != nil {
			t.Fatal(err)
		}
	}
	eps[0].Close()
	col.waitN(t, n)
	eps[1].Close()
}

func TestChanMeshConcurrentSenders(t *testing.T) {
	const np = 8
	const perSender = 200
	eps, cols := startChanMesh(t, np)
	var wg sync.WaitGroup
	for i := 0; i < np; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < perSender; s++ {
				if err := eps[i].Send((i+s)%np, mkFrame(i, s, "c")); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	deadline := time.Now().Add(10 * time.Second)
	for total < np*perSender && time.Now().Before(deadline) {
		total = 0
		for _, col := range cols {
			total += col.len()
		}
		time.Sleep(time.Millisecond)
	}
	if total != np*perSender {
		t.Fatalf("delivered %d frames, want %d", total, np*perSender)
	}
}

func TestNewChanMeshPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewChanMesh(0) did not panic")
		}
	}()
	NewChanMesh(0)
}

// peerFailure is one error-handler invocation observed in a TCP mesh test.
type peerFailure struct {
	rank, peer int
	err        error
}

// buildTCPMesh spins np listeners on localhost and returns started
// TCP transports plus their collectors. Every endpoint's error handler
// (installed before Start, per the Transport contract) forwards to the
// returned channel.
func buildTCPMesh(t *testing.T, np int) ([]*TCPTransport, []*collector, chan peerFailure) {
	t.Helper()
	failures := make(chan peerFailure, 64)
	lns := make([]net.Listener, np)
	addrs := make([]string, np)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	eps := make([]*TCPTransport, np)
	var wg sync.WaitGroup
	errs := make([]error, np)
	for i := 0; i < np; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			eps[i], errs[i] = NewTCPTransport(i, 42, addrs, lns[i])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("NewTCPTransport rank %d: %v", i, err)
		}
	}
	cols := make([]*collector, np)
	for i, ep := range eps {
		i := i
		cols[i] = newCollector()
		ep.SetHandler(cols[i].handle)
		ep.SetErrorHandler(func(peer int, err error) {
			failures <- peerFailure{rank: i, peer: peer, err: err}
		})
		if err := ep.Start(); err != nil {
			t.Fatalf("Start rank %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
		for _, ln := range lns {
			ln.Close()
		}
	})
	return eps, cols, failures
}

func TestTCPMeshAllToAll(t *testing.T) {
	const np = 4
	eps, cols, _ := buildTCPMesh(t, np)
	for i, ep := range eps {
		for j := 0; j < np; j++ {
			if err := ep.Send(j, mkFrame(i, 0, fmt.Sprintf("%d->%d", i, j))); err != nil {
				t.Fatalf("Send %d->%d: %v", i, j, err)
			}
		}
	}
	for j, col := range cols {
		col.waitN(t, np)
		col.mu.Lock()
		for _, f := range col.frames {
			want := fmt.Sprintf("%d->%d", f.src, j)
			if got := string(wire.Payload(f.frame)); got != want {
				t.Errorf("rank %d got payload %q, want %q", j, got, want)
			}
		}
		col.mu.Unlock()
	}
}

func TestTCPMeshOrderingAndVolume(t *testing.T) {
	const n = 3000
	eps, cols, _ := buildTCPMesh(t, 2)
	for s := 0; s < n; s++ {
		if err := eps[1].Send(0, mkFrame(1, s, "volume-test-payload")); err != nil {
			t.Fatal(err)
		}
	}
	cols[0].waitN(t, n)
	cols[0].mu.Lock()
	defer cols[0].mu.Unlock()
	for i, f := range cols[0].frames {
		var h wire.Header
		if err := h.Decode(f.frame); err != nil {
			t.Fatal(err)
		}
		if h.Seq != uint64(i) {
			t.Fatalf("frame %d has seq %d: TCP ordering violated", i, h.Seq)
		}
	}
}

func TestTCPMeshOrderlyShutdownNoErrors(t *testing.T) {
	eps, _, failures := buildTCPMesh(t, 3)
	// Close in a staggered order; goodbye frames must suppress spurious
	// peer-failure reports.
	for _, ep := range eps {
		ep.Close()
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case f := <-failures:
		t.Errorf("orderly shutdown reported failure: rank %d peer %d: %v", f.rank, f.peer, f.err)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestTCPMeshPeerCrashReported(t *testing.T) {
	eps, _, failures := buildTCPMesh(t, 2)
	// Simulate a crash of rank 1: close its sockets without goodbye.
	eps[1].closeConns()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case f := <-failures:
			if f.rank == 0 && f.peer == 1 {
				return // rank 0 learned of rank 1's crash
			}
		case <-deadline:
			t.Fatal("peer crash was not reported to rank 0")
		}
	}
}

func TestTCPRejectsForeignJob(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addrs := []string{ln.Addr().String(), ""}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Rank 0 of job 7 expects one peer.
		ep, err := NewTCPTransport(0, 7, addrs, ln)
		if err != nil {
			t.Errorf("NewTCPTransport: %v", err)
			return
		}
		ep.closeConns()
	}()

	// A connection from the wrong job must be rejected...
	bad, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	var hello [16]byte
	binary.LittleEndian.PutUint32(hello[0:], tcpMagic)
	binary.LittleEndian.PutUint32(hello[4:], 1)
	binary.LittleEndian.PutUint64(hello[8:], 999) // wrong job
	bad.Write(hello[:])

	// ...while the right job completes the mesh.
	good, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(hello[8:], 7)
	good.Write(hello[:])

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("bootstrap did not complete")
	}
	bad.Close()
	good.Close()
}

func TestSendQueueFIFOAndClose(t *testing.T) {
	q := newSendQueue()
	for i := 0; i < 10; i++ {
		if !q.push([]byte{byte(i)}) {
			t.Fatal("push on open queue failed")
		}
	}
	if q.len() != 10 {
		t.Fatalf("len = %d, want 10", q.len())
	}
	q.close()
	if q.push([]byte{99}) {
		t.Error("push on closed queue succeeded")
	}
	for i := 0; i < 10; i++ {
		f, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue ended early", i)
		}
		if f[0] != byte(i) {
			t.Fatalf("pop %d returned %d: FIFO violated", i, f[0])
		}
		q.delivered()
	}
	if _, ok := q.pop(); ok {
		t.Error("pop after drain on closed queue returned a frame")
	}
}
