package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
)

// HybTransport is the hybrid device ("hyb"), the analogue of MPJ Express's
// hybdev: one Transport composed of two meshes, routed per destination.
// Ranks co-located with this one — same locality key, meaning same OS
// process — are reached over a shared in-process channel mesh (zero
// syscalls on the data path); remote ranks over a TCP mesh that skips the
// co-located pairs entirely, so a job mixes intra-node and inter-node
// ranks transparently behind the one Transport interface.
//
// Co-located endpoints find each other through a process-local hub keyed
// by job id. Because each destination is permanently assigned to exactly
// one of the two meshes, the per-(src,dst) FIFO ordering guarantee of the
// Transport contract is preserved.
type HybTransport struct {
	rank  int
	size  int
	jobID uint64
	loc   string
	local []bool   // local[i]: rank i shares this process, route via ch
	locs  []string // per-rank locality keys from the bootstrap (LocalityTable)

	ch  *ChanTransport // shared-process mesh endpoint (always present; carries loopback)
	tcp *TCPTransport  // nil when every rank is co-located

	mu      sync.Mutex
	handler Handler
	errh    ErrorHandler
	closed  bool
}

var _ Transport = (*HybTransport)(nil)

// ErrPeerAborted is reported through the error handler of co-located
// endpoints when a peer in the same process aborts: in-process peers have
// no connection to observe breaking, so the hub propagates the failure
// explicitly.
var ErrPeerAborted = errors.New("transport: co-located peer aborted")

// ProcessLocality returns this process's locality key: ranks whose keys
// compare equal share an OS process and can exchange frames over channels.
// The key is host-qualified so two slaves on different machines can never
// collide, and pid-qualified because Go channels do not cross process
// boundaries even on one machine.
func ProcessLocality() string {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown-host"
	}
	return fmt.Sprintf("%s#%d", host, os.Getpid())
}

// HybConfig configures one endpoint of a hybrid mesh.
type HybConfig struct {
	// Rank is this endpoint's absolute rank; JobID namespaces the job in
	// the process-local hub and the TCP handshake.
	Rank  int
	JobID uint64

	// Locs[i] is rank i's locality key (ProcessLocality), distributed to
	// every rank through the job bootstrap. Ranks whose key equals
	// Locs[Rank] are routed over the channel mesh. A nil or short table
	// marks the unknown ranks remote, which is always safe.
	Locs []string

	// Addrs[i] is rank i's TCP mesh listener address and Listener this
	// rank's own listener; both are required only when a remote rank
	// exists (they are what NewTCPTransport takes).
	Addrs    []string
	Listener net.Listener
}

// NewHybTransport builds one endpoint of a hybrid mesh. Like
// NewTCPTransport it returns only once connections to all remote peers are
// established; the co-located half needs no handshake. The caller keeps
// ownership of cfg.Listener.
func NewHybTransport(cfg HybConfig) (*HybTransport, error) {
	size := len(cfg.Locs)
	if len(cfg.Addrs) > size {
		size = len(cfg.Addrs)
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("transport: hyb rank %d out of range for %d ranks", cfg.Rank, size)
	}
	loc := ""
	if cfg.Rank < len(cfg.Locs) {
		loc = cfg.Locs[cfg.Rank]
	}
	if loc == "" {
		loc = ProcessLocality()
	}
	local := make([]bool, size)
	remote := 0
	for i := 0; i < size; i++ {
		local[i] = i == cfg.Rank || (i < len(cfg.Locs) && cfg.Locs[i] != "" && cfg.Locs[i] == loc)
		if !local[i] {
			remote++
		}
	}

	locs := make([]string, size)
	copy(locs, cfg.Locs)
	locs[cfg.Rank] = loc
	t := &HybTransport{
		rank:  cfg.Rank,
		size:  size,
		jobID: cfg.JobID,
		loc:   loc,
		local: local,
		locs:  locs,
	}
	ch, err := processHub.join(cfg.JobID, size, cfg.Rank, t)
	if err != nil {
		return nil, err
	}
	t.ch = ch
	if remote > 0 {
		if cfg.Listener == nil {
			processHub.leave(cfg.JobID, cfg.Rank)
			return nil, fmt.Errorf("transport: hyb rank %d has %d remote peers but no listener", cfg.Rank, remote)
		}
		tcp, err := NewTCPMesh(cfg.Rank, cfg.JobID, cfg.Addrs, cfg.Listener, local)
		if err != nil {
			processHub.leave(cfg.JobID, cfg.Rank)
			return nil, err
		}
		t.tcp = tcp
	}
	return t, nil
}

// Rank returns this endpoint's rank.
func (t *HybTransport) Rank() int { return t.rank }

// Size returns the number of ranks in the job.
func (t *HybTransport) Size() int { return t.size }

// Local reports whether dst is routed over the in-process channel mesh.
func (t *HybTransport) Local(dst int) bool {
	return dst >= 0 && dst < t.size && t.local[dst]
}

// LocalityTable returns the per-rank locality keys the bootstrap
// distributed to this endpoint (a copy; entry i is rank i's key, "" for
// ranks whose key never reached us). Ranks with equal non-empty keys are
// co-located; the topology-aware collectives group by it.
func (t *HybTransport) LocalityTable() []string {
	out := make([]string, len(t.locs))
	copy(out, t.locs)
	return out
}

// DeviceName identifies the transport flavor for measured tuning tables.
func (t *HybTransport) DeviceName() string { return "hyb" }

// SetHandler installs the inbound frame handler on both halves; frames
// arrive with their sender's absolute rank regardless of the path taken.
func (t *HybTransport) SetHandler(h Handler) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
	t.ch.SetHandler(h)
	if t.tcp != nil {
		t.tcp.SetHandler(h)
	}
}

// SetErrorHandler installs the peer-failure handler. TCP-side connection
// failures and hub-propagated aborts of co-located peers both arrive here.
func (t *HybTransport) SetErrorHandler(h ErrorHandler) {
	t.mu.Lock()
	t.errh = h
	t.mu.Unlock()
	if t.tcp != nil {
		t.tcp.SetErrorHandler(h)
	}
}

// Send routes frame to dst: channel mesh for co-located ranks (including
// self), TCP mesh otherwise.
func (t *HybTransport) Send(dst int, frame []byte) error {
	if dst < 0 || dst >= t.size {
		return ErrBadRank
	}
	if t.local[dst] {
		return t.ch.Send(dst, frame)
	}
	return t.tcp.Send(dst, frame)
}

// Start launches both halves' reader and writer goroutines.
func (t *HybTransport) Start() error {
	t.mu.Lock()
	h := t.handler
	t.mu.Unlock()
	if h == nil {
		return ErrNoHandler
	}
	if err := t.ch.Start(); err != nil {
		return err
	}
	if t.tcp != nil {
		return t.tcp.Start()
	}
	return nil
}

// Drain blocks until both halves have handed every accepted frame to their
// medium.
func (t *HybTransport) Drain() {
	t.ch.Drain()
	if t.tcp != nil {
		t.tcp.Drain()
	}
}

// Close performs an orderly shutdown of both halves and leaves the hub.
func (t *HybTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	err := t.ch.Close()
	if t.tcp != nil {
		if e := t.tcp.Close(); err == nil {
			err = e
		}
	}
	processHub.leave(t.jobID, t.rank)
	return err
}

// Abort tears both halves down abruptly. Remote peers observe their TCP
// connections breaking, exactly as with the plain TCP transport; peers
// co-located in this process have no connection to observe, so the hub
// notifies their error handlers directly. Either way the paper's
// partial-failure-becomes-total-failure model holds across a mixed job.
func (t *HybTransport) Abort() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()

	siblings := processHub.coLocated(t.jobID, t.rank, t.loc)
	t.ch.Abort()
	if t.tcp != nil {
		t.tcp.Abort()
	}
	processHub.leave(t.jobID, t.rank)
	for _, s := range siblings {
		s.peerAborted(t.rank)
	}
}

// peerAborted forwards a co-located peer's abort to this endpoint's error
// handler, unless this endpoint is already shut down.
func (t *HybTransport) peerAborted(peer int) {
	t.mu.Lock()
	h := t.errh
	closed := t.closed
	t.mu.Unlock()
	if closed || h == nil {
		return
	}
	h(peer, ErrPeerAborted)
}

// hub is the process-local rendezvous through which co-located ranks of a
// job find their shared channel mesh — the stand-in for the shared-memory
// segment a multicore MPI device would map.
type hub struct {
	mu   sync.Mutex
	jobs map[uint64]*hubJob
}

// hubJob is one job's shared state in the hub: a full-width channel mesh
// (endpoints of remote ranks simply stay unused) and the locally joined
// endpoints, kept for abort propagation.
type hubJob struct {
	np      int
	eps     []*ChanTransport
	members map[int]*HybTransport
}

var processHub = hub{jobs: make(map[uint64]*hubJob)}

// join registers rank under jobID and returns its channel-mesh endpoint.
// The first rank of a job to arrive creates the mesh; every rank leaves
// again through leave, and the job entry dies with its last member.
func (h *hub) join(jobID uint64, np, rank int, m *HybTransport) (*ChanTransport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	j := h.jobs[jobID]
	if j == nil {
		j = &hubJob{np: np, eps: NewChanMesh(np), members: make(map[int]*HybTransport)}
		h.jobs[jobID] = j
	}
	if j.np != np {
		return nil, fmt.Errorf("transport: hub job %d spans %d ranks, rank %d expects %d", jobID, j.np, rank, np)
	}
	if _, dup := j.members[rank]; dup {
		return nil, fmt.Errorf("transport: rank %d joined hub job %d twice", rank, jobID)
	}
	j.members[rank] = m
	return j.eps[rank], nil
}

// leave deregisters rank from jobID, dropping the job when empty.
func (h *hub) leave(jobID uint64, rank int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	j := h.jobs[jobID]
	if j == nil {
		return
	}
	delete(j.members, rank)
	if len(j.members) == 0 {
		delete(h.jobs, jobID)
	}
}

// coLocated snapshots the currently joined endpoints sharing loc, rank's
// own excluded. Callers use the snapshot outside the hub lock.
func (h *hub) coLocated(jobID uint64, rank int, loc string) []*HybTransport {
	h.mu.Lock()
	defer h.mu.Unlock()
	j := h.jobs[jobID]
	if j == nil {
		return nil
	}
	var out []*HybTransport
	for r, m := range j.members {
		if r != rank && m.loc == loc {
			out = append(out, m)
		}
	}
	return out
}
