package transport

import "sync"

// sendQueue is an unbounded FIFO of frames drained by a single writer
// goroutine. Unbounded queues realize the paper's eager-protocol assumption
// that "receiver threads have unlimited buffering" on the send side, and —
// more importantly — they let protocol handlers issue sends (e.g. a CTS in
// response to an RTS) without ever blocking a reader goroutine, which is
// what makes the mesh deadlock-free.
type sendQueue struct {
	mu         sync.Mutex
	nonEmp     sync.Cond // signalled when items become non-empty or queue closes
	idle       sync.Cond // signalled when queue is empty and nothing is in flight
	items      [][]byte
	delivering bool // the writer popped a frame and has not finished delivering it
	closed     bool
}

func newSendQueue() *sendQueue {
	q := &sendQueue{}
	q.nonEmp.L = &q.mu
	q.idle.L = &q.mu
	return q
}

// push appends a frame. It reports false if the queue is closed.
func (q *sendQueue) push(frame []byte) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, frame)
	q.nonEmp.Signal()
	return true
}

// pop removes the oldest frame, blocking while the queue is empty. It
// returns ok=false once the queue is closed and fully drained. A successful
// pop marks the queue as delivering until the writer calls delivered.
func (q *sendQueue) pop() (frame []byte, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.nonEmp.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	frame = q.items[0]
	q.items = q.items[1:]
	q.delivering = true
	return frame, true
}

// delivered records that the frame returned by the last pop has been handed
// to the underlying medium.
func (q *sendQueue) delivered() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.delivering = false
	if len(q.items) == 0 {
		q.idle.Broadcast()
	}
}

// waitIdle blocks until every pushed frame has been delivered.
func (q *sendQueue) waitIdle() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) > 0 || q.delivering {
		q.idle.Wait()
	}
}

// close marks the queue closed. The writer drains remaining items first.
func (q *sendQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.nonEmp.Broadcast()
	q.idle.Broadcast()
}

// len reports the number of queued frames.
func (q *sendQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
