package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mpj/internal/wire"
)

func TestParseDeviceName(t *testing.T) {
	cases := []struct {
		in   string
		want DeviceName
		ok   bool
	}{
		{"", DefaultDevice, true},
		{"chan", DeviceChan, true},
		{"tcp", DeviceTCP, true},
		{"hyb", DeviceHyb, true},
		{"smpdev", "", false},
		{"CHAN", "", false},
	}
	for _, c := range cases {
		got, err := ParseDeviceName(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseDeviceName(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseDeviceName(%q) accepted an unknown device", c.in)
		}
	}
}

// buildHybLocalPair returns two started all-co-located hybrid endpoints.
func buildHybLocalPair(t *testing.T, jobID uint64) ([]*HybTransport, []*collector) {
	t.Helper()
	loc := ProcessLocality()
	locs := []string{loc, loc}
	eps := make([]*HybTransport, 2)
	cols := make([]*collector, 2)
	for i := range eps {
		ep, err := NewHybTransport(HybConfig{Rank: i, JobID: jobID, Locs: locs})
		if err != nil {
			t.Fatalf("NewHybTransport rank %d: %v", i, err)
		}
		eps[i] = ep
		cols[i] = newCollector()
		ep.SetHandler(cols[i].handle)
		if err := ep.Start(); err != nil {
			t.Fatalf("Start rank %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps, cols
}

func TestHybAllLocalPingPong(t *testing.T) {
	eps, cols := buildHybLocalPair(t, 9001)
	for _, ep := range eps {
		if ep.tcp != nil {
			t.Fatalf("all-co-located hyb rank %d built a TCP mesh", ep.Rank())
		}
		for dst := 0; dst < 2; dst++ {
			if !ep.Local(dst) {
				t.Errorf("rank %d: Local(%d) = false, want true", ep.Rank(), dst)
			}
		}
	}
	if err := eps[0].Send(1, mkFrame(0, 0, "ping")); err != nil {
		t.Fatal(err)
	}
	cols[1].waitN(t, 1)
	if err := eps[1].Send(0, mkFrame(1, 0, "pong")); err != nil {
		t.Fatal(err)
	}
	cols[0].waitN(t, 1)
	if got := string(wire.Payload(cols[0].frames[0].frame)); got != "pong" {
		t.Errorf("rank 0 received %q, want %q", got, "pong")
	}
	// Loopback also rides the channel mesh.
	if err := eps[0].Send(0, mkFrame(0, 1, "self")); err != nil {
		t.Fatal(err)
	}
	cols[0].waitN(t, 1)
}

// TestHybMixedLocalityRouting simulates two "hosts" in one process by
// giving ranks {0,1} and {2,3} different locality keys: intra-pair frames
// must ride the channel mesh, cross-pair frames the TCP mesh, and the
// all-to-all traffic must still arrive exactly once each.
func TestHybMixedLocalityRouting(t *testing.T) {
	const np = 4
	locs := []string{"hostA#1", "hostA#1", "hostB#1", "hostB#1"}
	lns := make([]net.Listener, np)
	addrs := make([]string, np)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	eps := make([]*HybTransport, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for i := 0; i < np; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			eps[i], errs[i] = NewHybTransport(HybConfig{
				Rank: i, JobID: 9002, Locs: locs, Addrs: addrs, Listener: lns[i],
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("NewHybTransport rank %d: %v", i, err)
		}
	}
	cols := make([]*collector, np)
	for i, ep := range eps {
		cols[i] = newCollector()
		ep.SetHandler(cols[i].handle)
		if err := ep.Start(); err != nil {
			t.Fatalf("Start rank %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})

	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			wantLocal := locs[i] == locs[j]
			if got := eps[i].Local(j); got != wantLocal {
				t.Errorf("rank %d: Local(%d) = %v, want %v", i, j, got, wantLocal)
			}
		}
		// Cross-pair TCP connections exist, intra-pair ones do not.
		if eps[i].tcp == nil {
			t.Fatalf("rank %d with remote peers has no TCP mesh", i)
		}
		for j := 0; j < np; j++ {
			hasConn := eps[i].tcp.conns[j] != nil
			if wantConn := locs[i] != locs[j]; hasConn != wantConn {
				t.Errorf("rank %d: TCP conn to %d = %v, want %v", i, j, hasConn, wantConn)
			}
		}
	}

	for i, ep := range eps {
		for j := 0; j < np; j++ {
			if err := ep.Send(j, mkFrame(i, 0, fmt.Sprintf("%d->%d", i, j))); err != nil {
				t.Fatalf("Send %d->%d: %v", i, j, err)
			}
		}
	}
	for j, col := range cols {
		col.waitN(t, np)
		col.mu.Lock()
		seen := map[int]bool{}
		for _, f := range col.frames {
			seen[f.src] = true
			want := fmt.Sprintf("%d->%d", f.src, j)
			if got := string(wire.Payload(f.frame)); got != want {
				t.Errorf("rank %d got payload %q, want %q", j, got, want)
			}
		}
		col.mu.Unlock()
		if len(seen) != np {
			t.Errorf("rank %d heard from %d distinct sources, want %d", j, len(seen), np)
		}
	}
}

func TestHybAbortNotifiesCoLocatedPeers(t *testing.T) {
	loc := ProcessLocality()
	locs := []string{loc, loc}
	failures := make(chan peerFailure, 4)
	eps := make([]*HybTransport, 2)
	for i := range eps {
		ep, err := NewHybTransport(HybConfig{Rank: i, JobID: 9003, Locs: locs})
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		i := i
		ep.SetHandler(func(int, []byte) {})
		ep.SetErrorHandler(func(peer int, err error) {
			failures <- peerFailure{rank: i, peer: peer, err: err}
		})
		if err := ep.Start(); err != nil {
			t.Fatal(err)
		}
	}
	eps[0].Abort()
	select {
	case f := <-failures:
		if f.rank != 1 || f.peer != 0 || !errors.Is(f.err, ErrPeerAborted) {
			t.Errorf("failure = %+v, want rank 1 learning of rank 0's abort", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("co-located peer was not told about the abort")
	}
	eps[1].Close()
}

func TestHubRejectsConflictingJoins(t *testing.T) {
	loc := ProcessLocality()
	ep, err := NewHybTransport(HybConfig{Rank: 0, JobID: 9004, Locs: []string{loc, loc}})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := NewHybTransport(HybConfig{Rank: 0, JobID: 9004, Locs: []string{loc, loc}}); err == nil {
		t.Error("duplicate rank joined the hub twice")
	}
	if _, err := NewHybTransport(HybConfig{Rank: 1, JobID: 9004, Locs: []string{loc, loc, loc}}); err == nil {
		t.Error("hub accepted a joiner with a conflicting job size")
	}
}

func TestHybRequiresListenerForRemotePeers(t *testing.T) {
	if _, err := NewHybTransport(HybConfig{
		Rank: 0, JobID: 9005, Locs: []string{"here#1", "elsewhere#1"},
		Addrs: []string{"127.0.0.1:1", "127.0.0.1:2"},
	}); err == nil {
		t.Error("hyb endpoint with remote peers accepted a nil listener")
	}
	// The failed join must not leak hub state: the same rank can join again.
	loc := ProcessLocality()
	ep, err := NewHybTransport(HybConfig{Rank: 0, JobID: 9005, Locs: []string{loc, loc}})
	if err != nil {
		t.Fatalf("rejoining after a failed construction: %v", err)
	}
	ep.Close()
}
