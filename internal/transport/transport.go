// Package transport provides reliable, ordered frame delivery between the
// processes of an MPJ job.
//
// This is the Go rendition of the paper's "Java Socket and Thread APIs"
// layer: an all-to-all mesh of connections with one input-handler goroutine
// per inbound connection, exactly the structure §3.5(1–2) of the paper
// prescribes for a select-less socket API.
//
// Two implementations are provided behind one interface:
//
//   - ChanTransport: an in-process mesh built on Go channels. Every rank of
//     the job runs as a goroutine in one OS process. This is the hermetic
//     substrate used by unit tests and benchmarks.
//   - TCPTransport: the real thing — an all-to-all TCP mesh between OS
//     processes, bootstrapped from an address book.
//
// Sends are asynchronous: Send enqueues the frame on an unbounded
// per-destination queue drained by a dedicated writer goroutine. Inbound
// frames are pushed to a Handler from the per-connection reader goroutine.
// Because the device-level handler never blocks (it either completes a
// posted receive or enqueues the frame), readers never stall and the mesh
// cannot deadlock on control traffic.
package transport

import "errors"

// Handler consumes one inbound frame. src is the absolute rank of the
// sender. The frame slice is owned by the handler after the call.
//
// Handlers are invoked from reader goroutines (one per inbound connection,
// plus one for loopback) and must not block indefinitely.
type Handler func(src int, frame []byte)

// ErrorHandler is notified when a peer connection fails outside an orderly
// shutdown. The job layer uses this to turn partial failure into total
// failure, per the paper's failure model.
type ErrorHandler func(peer int, err error)

// Transport moves frames between the ranks of one job.
type Transport interface {
	// Rank returns the absolute rank of this endpoint in the job.
	Rank() int
	// Size returns the number of ranks in the job.
	Size() int
	// Send enqueues frame for delivery to dst. It never blocks. Delivery
	// is reliable and ordered per (src, dst) pair. Send returns an error
	// only if the transport is closed or dst is out of range.
	Send(dst int, frame []byte) error
	// SetHandler installs the inbound frame handler. Must be called
	// before Start.
	SetHandler(Handler)
	// SetErrorHandler installs the peer-failure handler. Optional; must
	// be called before Start.
	SetErrorHandler(ErrorHandler)
	// Start launches reader and writer goroutines.
	Start() error
	// Drain blocks until every frame accepted by Send has been handed to
	// the underlying medium (channel or socket).
	Drain()
	// Close tears the endpoint down. It drains outbound queues first so
	// an orderly shutdown does not drop frames.
	Close() error
	// Abort tears the endpoint down abruptly, without draining and
	// without goodbyes, so that peers observe a failure rather than an
	// orderly shutdown. Used to propagate application failure.
	Abort()
}

// Errors shared by transport implementations.
var (
	ErrClosed     = errors.New("transport: closed")
	ErrBadRank    = errors.New("transport: destination rank out of range")
	ErrNoHandler  = errors.New("transport: Start called before SetHandler")
	ErrStarted    = errors.New("transport: already started")
	ErrNotStarted = errors.New("transport: not started")
)
