// Package transport provides reliable, ordered frame delivery between the
// processes of an MPJ job.
//
// This is the Go rendition of the paper's "Java Socket and Thread APIs"
// layer: an all-to-all mesh of connections with one input-handler goroutine
// per inbound connection, exactly the structure §3.5(1–2) of the paper
// prescribes for a select-less socket API.
//
// Three implementations are provided behind one interface, selectable by
// DeviceName (the analogue of MPJ Express's niodev/smpdev/hybdev device
// family):
//
//   - ChanTransport ("chan"): an in-process mesh built on Go channels.
//     Every rank of the job runs as a goroutine in one OS process — the
//     multicore device, and the hermetic substrate used by unit tests and
//     benchmarks.
//   - TCPTransport ("tcp"): the real thing — an all-to-all TCP mesh
//     between OS processes, bootstrapped from an address book.
//   - HybTransport ("hyb"): the hybrid device — frames to ranks co-located
//     in the same OS process travel over a shared channel mesh (zero
//     syscalls), frames to remote ranks over a TCP mesh.
//
// Sends are asynchronous: Send enqueues the frame on an unbounded
// per-destination queue drained by a dedicated writer goroutine. Inbound
// frames are pushed to a Handler from the per-connection reader goroutine.
// Because the device-level handler never blocks (it either completes a
// posted receive or enqueues the frame), readers never stall and the mesh
// cannot deadlock on control traffic.
//
// See ARCHITECTURE.md at the repository root for where this package sits in
// the layer stack.
package transport

import (
	"errors"
	"fmt"
)

// Handler consumes one inbound frame. src is the absolute rank of the
// sender. Ownership of the frame slice transfers to the handler with the
// call: nothing in the transport touches the frame afterwards, and the
// handler may release it to the frame pool with wire.PutBuf once it has
// copied (or decided to retain) the bytes it needs. A handler that retains
// the frame — or a slice aliasing it, such as wire.Payload(frame) — simply
// never puts it.
//
// Handlers are invoked from reader goroutines (one per inbound connection,
// plus one for loopback) and must not block indefinitely.
type Handler func(src int, frame []byte)

// DeviceName selects a Transport implementation — the device-selection
// surface of the paper's §3.5 abstract device level, mirroring MPJ
// Express's device names.
type DeviceName string

const (
	// DeviceChan is the in-process channel mesh (the multicore device):
	// every rank a goroutine in one OS process.
	DeviceChan DeviceName = "chan"
	// DeviceTCP is the all-to-all TCP mesh between OS processes.
	DeviceTCP DeviceName = "tcp"
	// DeviceHyb is the hybrid device: channel mesh to co-located ranks,
	// TCP mesh to remote ranks.
	DeviceHyb DeviceName = "hyb"
)

// DefaultDevice is the device used when none is selected explicitly. The
// hybrid device subsumes the other two: a job whose ranks are all remote
// degenerates to the TCP mesh, one whose ranks are all co-located to the
// channel mesh.
const DefaultDevice = DeviceHyb

// ParseDeviceName validates a device selection ("" selects DefaultDevice).
func ParseDeviceName(s string) (DeviceName, error) {
	switch DeviceName(s) {
	case "":
		return DefaultDevice, nil
	case DeviceChan, DeviceTCP, DeviceHyb:
		return DeviceName(s), nil
	}
	return "", fmt.Errorf("transport: unknown device %q (have %q, %q, %q)", s, DeviceChan, DeviceTCP, DeviceHyb)
}

// ErrorHandler is notified when a peer connection fails outside an orderly
// shutdown. The job layer uses this to turn partial failure into total
// failure, per the paper's failure model.
type ErrorHandler func(peer int, err error)

// Transport moves frames between the ranks of one job.
type Transport interface {
	// Rank returns the absolute rank of this endpoint in the job.
	Rank() int
	// Size returns the number of ranks in the job.
	Size() int
	// Send enqueues frame for delivery to dst. It never blocks. Delivery
	// is reliable and ordered per (src, dst) pair. Send returns an error
	// only if the transport is closed or dst is out of range.
	//
	// Ownership of the frame transfers to the transport: the caller must
	// not touch it after Send returns. The transport either hands the
	// frame to a local Handler (which then owns it) or writes it to a
	// socket and releases it to the frame pool itself.
	Send(dst int, frame []byte) error
	// SetHandler installs the inbound frame handler. Must be called
	// before Start.
	SetHandler(Handler)
	// SetErrorHandler installs the peer-failure handler. Optional; must
	// be called before Start.
	SetErrorHandler(ErrorHandler)
	// Start launches reader and writer goroutines.
	Start() error
	// Drain blocks until every frame accepted by Send has been handed to
	// the underlying medium (channel or socket).
	Drain()
	// Close tears the endpoint down. It drains outbound queues first so
	// an orderly shutdown does not drop frames.
	Close() error
	// Abort tears the endpoint down abruptly, without draining and
	// without goodbyes, so that peers observe a failure rather than an
	// orderly shutdown. Used to propagate application failure.
	Abort()
}

// Errors shared by transport implementations.
var (
	ErrClosed     = errors.New("transport: closed")
	ErrBadRank    = errors.New("transport: destination rank out of range")
	ErrNoHandler  = errors.New("transport: Start called before SetHandler")
	ErrStarted    = errors.New("transport: already started")
	ErrNotStarted = errors.New("transport: not started")
)
