// Distributed word count over OBJECT messaging: rank 0 scatters chunks of
// text as serialized objects, every rank counts words, and rank 0 gathers
// and merges the partial maps — the object-serialization workload the MPJ
// draft introduced OBJECT for ("direct communication of objects via
// object serialization").
//
//	go run ./examples/wordcount -np 4
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"mpj"
)

// corpus is a built-in text so the example runs with no input files.
const corpus = `the quick brown fox jumps over the lazy dog
pack my box with five dozen liquor jugs
how vexingly quick daft zebras jump
the five boxing wizards jump quickly
sphinx of black quartz judge my vow
the dog barks and the fox runs and the dog sleeps`

func wordcountApp(w *mpj.Comm) error {
	rank, size := w.Rank(), w.Size()

	// Rank 0 slices the corpus into one chunk of lines per rank and
	// scatters them as OBJECT elements (strings).
	var chunks []any
	if rank == 0 {
		lines := strings.Split(corpus, "\n")
		chunks = make([]any, size)
		for i := range chunks {
			lo := i * len(lines) / size
			hi := (i + 1) * len(lines) / size
			chunks[i] = strings.Join(lines[lo:hi], "\n")
		}
	}
	myChunk := make([]any, 1)
	if err := w.Scatter(chunks, 0, 1, mpj.OBJECT, myChunk, 0, 1, mpj.OBJECT, 0); err != nil {
		return fmt.Errorf("scatter: %w", err)
	}

	// Count words locally.
	counts := map[string]int{}
	text, _ := myChunk[0].(string)
	for _, word := range strings.Fields(text) {
		counts[strings.ToLower(word)]++
	}

	// Gather the partial maps (maps travel as serialized objects).
	var partials []any
	if rank == 0 {
		partials = make([]any, size)
	}
	if err := w.Gather([]any{counts}, 0, 1, mpj.OBJECT, partials, 0, 1, mpj.OBJECT, 0); err != nil {
		return fmt.Errorf("gather: %w", err)
	}

	if rank == 0 {
		merged := map[string]int{}
		for _, p := range partials {
			for word, n := range p.(map[string]int) {
				merged[word] += n
			}
		}
		type wc struct {
			word string
			n    int
		}
		var all []wc
		for word, n := range merged {
			all = append(all, wc{word, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].word < all[j].word
		})
		fmt.Printf("top words across %d ranks:\n", size)
		for i, e := range all {
			if i == 8 {
				break
			}
			fmt.Printf("  %-10s %d\n", e.word, e.n)
		}
	}
	return nil
}

func main() {
	np := flag.Int("np", 4, "number of processes")
	flag.Parse()

	mpj.RegisterType(map[string]int{})
	mpj.Register("wordcount", wordcountApp)
	if mpj.Main() {
		return
	}
	if err := mpj.RunLocal(*np, wordcountApp); err != nil {
		log.Fatal(err)
	}
}
