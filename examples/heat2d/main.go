// 2-D Jacobi heat diffusion on a Cartesian process topology: the halo-
// exchange workload that motivates most of the MPJ API — Cartesian
// communicators (CreateCart/Shift), neighbour exchange, and convergence
// detection with Allreduce(MAX).
//
// The N×N plate is decomposed by rows; boundary rows are fixed at hot
// (top) and cold (bottom). Each iteration exchanges halo rows with the
// up/down neighbours and relaxes the interior.
//
// The halo exchange is written against the typed API: offsets are plain
// subslices (cur[:n] is the upper halo row, cur[n:2*n] the first interior
// row), so a receive is mpj.Irecv(cart.Comm, cur[:n], up, tag). The
// -overlap=false branch keeps the classic Sendrecv surface to show the two
// facades interoperating on one communicator.
//
// With -overlap (the default) the exchange is non-blocking and overlapped:
// halo Isend/Irecv are posted, the halo-independent interior rows relax
// while the messages fly, then the edge rows finish after WaitAll — and
// the convergence check is a deferred Iallreduce, started after one
// iteration and harvested during the next, so the reduction tree runs
// behind the stencil. -overlap=false keeps the classic Sendrecv+Allreduce
// structure for comparison.
//
//	go run ./examples/heat2d -np 4 -n 256 -iters 500
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"mpj"
)

var (
	gridN   = flag.Int("n", 128, "grid size (N x N)")
	iters   = flag.Int("iters", 200, "maximum iterations")
	tol     = flag.Float64("tol", 1e-4, "convergence tolerance on max update")
	overlap = flag.Bool("overlap", true, "overlap halo exchange and convergence reduction with compute")
)

const haloTag = 7

// relaxRows applies one Jacobi update to rows lo..hi (inclusive) and
// returns the largest update it made.
func relaxRows(cur, next []float64, n, lo, hi int) float64 {
	var localMax float64
	for i := lo; i <= hi; i++ {
		for j := 1; j < n-1; j++ {
			idx := i*n + j
			v := 0.25 * (cur[idx-n] + cur[idx+n] + cur[idx-1] + cur[idx+1])
			if d := math.Abs(v - cur[idx]); d > localMax {
				localMax = d
			}
			next[idx] = v
		}
		next[i*n] = cur[i*n]
		next[i*n+n-1] = cur[i*n+n-1]
	}
	return localMax
}

func heatApp(w *mpj.Comm) error {
	// A 1-D non-periodic process grid over the rows.
	cart, err := w.CreateCart([]int{w.Size()}, []bool{false}, false)
	if err != nil {
		return err
	}
	if cart == nil {
		return nil // excluded from the grid (never happens for 1-D full size)
	}
	rank, size := cart.Rank(), cart.Size()
	n := *gridN
	rows := n / size
	if rank < n%size {
		rows++
	}
	if rows == 0 {
		return fmt.Errorf("grid too small: %d rows over %d ranks", n, size)
	}

	up, down, err := cart.Shift(0, 1) // up = rank-1, down = rank+1
	if err != nil {
		return err
	}

	// Local slab with two halo rows: (rows+2) x n, row-major.
	cur := make([]float64, (rows+2)*n)
	next := make([]float64, (rows+2)*n)
	// Global boundary conditions: top edge hot, bottom edge cold.
	if up == mpj.Undefined {
		for j := 0; j < n; j++ {
			cur[j] = 100.0 // halo row doubles as the fixed boundary
			next[j] = 100.0
		}
	}

	// Deferred convergence state (overlap mode): the Iallreduce started in
	// iteration k is harvested in iteration k+1, so the reduction overlaps
	// a full stencil sweep.
	var convReq *mpj.CollRequest
	convOut := make([]float64, 1)

	finish := func(it int, gmax float64) error {
		if rank == 0 {
			fmt.Printf("converged after %d iterations (max update %.2e)\n", it+1, gmax)
		}
		return report(cart, cur, rows, n)
	}

	for it := 0; it < *iters; it++ {
		var localMax float64

		if *overlap {
			// Post the halo exchange, relax the halo-independent interior
			// while it flies, then finish the edge rows.
			var reqs []*mpj.Request
			post := func(r *mpj.Request, err error) error {
				if err != nil {
					return fmt.Errorf("halo: %w", err)
				}
				reqs = append(reqs, r)
				return nil
			}
			if up != mpj.Undefined {
				rr, err := mpj.Irecv(cart.Comm, cur[:n], up, haloTag)
				if err := post(rr, err); err != nil {
					return err
				}
				sr, err := mpj.Isend(cart.Comm, cur[n:2*n], up, haloTag)
				if err := post(sr, err); err != nil {
					return err
				}
			}
			if down != mpj.Undefined {
				rr, err := mpj.Irecv(cart.Comm, cur[(rows+1)*n:], down, haloTag)
				if err := post(rr, err); err != nil {
					return err
				}
				sr, err := mpj.Isend(cart.Comm, cur[rows*n:(rows+1)*n], down, haloTag)
				if err := post(sr, err); err != nil {
					return err
				}
			}
			if rows > 2 {
				localMax = relaxRows(cur, next, n, 2, rows-1)
			}
			if _, err := mpj.WaitAll(reqs); err != nil {
				return fmt.Errorf("halo wait: %w", err)
			}
			if m := relaxRows(cur, next, n, 1, 1); m > localMax {
				localMax = m
			}
			if rows > 1 {
				if m := relaxRows(cur, next, n, rows, rows); m > localMax {
					localMax = m
				}
			}
		} else {
			// Classic structure: blocking Sendrecv pairs, then the sweep.
			if up != mpj.Undefined {
				if _, err := cart.Sendrecv(
					cur, n, n, mpj.DOUBLE, up, haloTag,
					cur, 0, n, mpj.DOUBLE, up, haloTag); err != nil {
					return fmt.Errorf("halo up: %w", err)
				}
			}
			if down != mpj.Undefined {
				if _, err := cart.Sendrecv(
					cur, rows*n, n, mpj.DOUBLE, down, haloTag,
					cur, (rows+1)*n, n, mpj.DOUBLE, down, haloTag); err != nil {
					return fmt.Errorf("halo down: %w", err)
				}
			}
			localMax = relaxRows(cur, next, n, 1, rows)
		}
		cur, next = next, cur

		// Global convergence check.
		if *overlap {
			// Harvest last iteration's reduction, then launch this one.
			if convReq != nil {
				if _, err := convReq.Wait(); err != nil {
					return fmt.Errorf("convergence iallreduce: %w", err)
				}
				convReq = nil
				if convOut[0] < *tol {
					return finish(it, convOut[0])
				}
			}
			convOut[0] = 0
			if convReq, err = mpj.Iallreduce(
				cart.Comm, []float64{localMax}, convOut, mpj.Max[float64]()); err != nil {
				return fmt.Errorf("convergence iallreduce: %w", err)
			}
		} else {
			gmax := make([]float64, 1)
			if err := mpj.Allreduce(cart.Comm, []float64{localMax}, gmax, mpj.Max[float64]()); err != nil {
				return fmt.Errorf("convergence allreduce: %w", err)
			}
			if gmax[0] < *tol {
				return finish(it, gmax[0])
			}
		}
	}
	// Harvest the final sweep's reduction so overlap mode detects
	// convergence on the last iteration exactly like blocking mode.
	if convReq != nil {
		if _, err := convReq.Wait(); err != nil {
			return fmt.Errorf("convergence iallreduce: %w", err)
		}
		if convOut[0] < *tol {
			return finish(*iters-1, convOut[0])
		}
	}
	if rank == 0 {
		fmt.Printf("stopped after %d iterations\n", *iters)
	}
	return report(cart, cur, rows, n)
}

// report gathers per-rank mean temperatures to rank 0.
func report(cart *mpj.CartComm, cur []float64, rows, n int) error {
	var sum float64
	for i := 1; i <= rows; i++ {
		for j := 0; j < n; j++ {
			sum += cur[i*n+j]
		}
	}
	mine := []float64{sum / float64(rows*n)}
	var all []float64
	if cart.Rank() == 0 {
		all = make([]float64, cart.Size())
	}
	if err := mpj.Gather(cart.Comm, mine, all, 0); err != nil {
		return err
	}
	if cart.Rank() == 0 {
		fmt.Print("mean temperature by row band:")
		for _, v := range all {
			fmt.Printf(" %6.2f", v)
		}
		fmt.Println()
	}
	return nil
}

func main() {
	np := flag.Int("np", 4, "number of processes")
	flag.Parse()

	mpj.Register("heat2d", heatApp)
	if mpj.Main() {
		return
	}
	if err := mpj.RunLocal(*np, heatApp); err != nil {
		log.Fatal(err)
	}
}
