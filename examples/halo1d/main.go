// 1-D halo exchange with one-sided communication: the RMA counterpart of
// the heat2d example's neighbour exchange. Each rank relaxes a segment of
// a periodic 1-D rod; the boundary cells of the neighbours are mirrored
// into halo slots before every sweep.
//
// The exchange is written twice over the same decomposition:
//
//   - two-sided: the classic Sendrecv pairing, each rank sending its edge
//     cells to its neighbours and receiving their edges into its halos;
//   - one-sided: a window over the local segment (halos included) and a
//     fence epoch in which each rank Puts its edge cells straight into
//     the neighbours' halo slots — no receives anywhere.
//
// Both runs start from the same initial rod, and after every sweep each
// rank asserts its RMA segment is bit-identical to the two-sided one, so
// the example doubles as an end-to-end check that Put+Fence delivers
// exactly the halo values Sendrecv does.
//
//	go run ./examples/halo1d -np 4 -n 64 -iters 50
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"mpj"
)

const haloTag = 11

// relax applies one Jacobi sweep to the interior cells [1..n] of a
// segment with halo slots at 0 and n+1.
func relax(cur, next []float64, n int) {
	for i := 1; i <= n; i++ {
		next[i] = 0.5 * (cur[i-1] + cur[i+1])
	}
}

// initSegment fills the interior of a rank's segment with a deterministic
// bump so every rank starts from the same global rod in both runs.
func initSegment(seg []float64, rank, n int) {
	for i := 1; i <= n; i++ {
		g := rank*n + i - 1 // global cell index
		seg[i] = math.Sin(float64(g) * 0.1)
	}
}

func haloApp(w *mpj.Comm) error {
	n := *cells
	rank, size := w.Rank(), w.Size()
	left := (rank - 1 + size) % size
	right := (rank + 1) % size

	// Two-sided reference: halos filled by Sendrecv pairs.
	cur := make([]float64, n+2)
	next := make([]float64, n+2)
	initSegment(cur, rank, n)
	for it := 0; it < *iters; it++ {
		// Send my left edge to the left neighbour's right halo; receive my
		// left halo from the left neighbour's right edge — and vice versa.
		if _, err := w.Sendrecv(
			cur, 1, 1, mpj.DOUBLE, left, haloTag,
			cur, n+1, 1, mpj.DOUBLE, right, haloTag); err != nil {
			return fmt.Errorf("sendrecv left: %w", err)
		}
		if _, err := w.Sendrecv(
			cur, n, 1, mpj.DOUBLE, right, haloTag,
			cur, 0, 1, mpj.DOUBLE, left, haloTag); err != nil {
			return fmt.Errorf("sendrecv right: %w", err)
		}
		relax(cur, next, n)
		cur, next = next, cur
	}

	// One-sided run: same rod, halos filled by Put under a fence epoch.
	rcur := make([]float64, n+2)
	rnext := make([]float64, n+2)
	initSegment(rcur, rank, n)
	win, err := w.WinCreate(rcur, 1)
	if err != nil {
		return fmt.Errorf("win create: %w", err)
	}
	for it := 0; it < *iters; it++ {
		// Open the epoch, push my edge cells into the neighbours' halo
		// slots, close the epoch. After Fence returns, every rank's halos
		// hold its neighbours' current edges.
		if err := win.Fence(); err != nil {
			return fmt.Errorf("fence: %w", err)
		}
		if err := mpj.PutT(win, rcur[1:2], left, n+1); err != nil { // my left edge -> left's right halo
			return fmt.Errorf("put left: %w", err)
		}
		if err := mpj.PutT(win, rcur[n:n+1], right, 0); err != nil { // my right edge -> right's left halo
			return fmt.Errorf("put right: %w", err)
		}
		if err := win.Fence(); err != nil {
			return fmt.Errorf("fence: %w", err)
		}
		relax(rcur, rnext, n)
		// The window is registered over rcur's memory: copy the sweep
		// result back instead of swapping the slices.
		copy(rcur, rnext)
	}

	// The two runs must agree bit-for-bit on every rank.
	for i := 1; i <= n; i++ {
		if cur[i] != rcur[i] {
			return fmt.Errorf("rank %d cell %d: two-sided %v, one-sided %v", rank, i, cur[i], rcur[i])
		}
	}
	if err := win.Free(); err != nil {
		return fmt.Errorf("win free: %w", err)
	}

	// Report a global checksum so the output is deterministic.
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += cur[i]
	}
	total := make([]float64, 1)
	if err := mpj.Allreduce(w, []float64{sum}, total, mpj.Sum[float64]()); err != nil {
		return fmt.Errorf("checksum allreduce: %w", err)
	}
	if rank == 0 {
		fmt.Printf("halo1d: %d ranks x %d cells, %d iters: one-sided == two-sided, checksum %.6f\n",
			size, n, *iters, total[0])
	}
	return nil
}

var (
	cells = flag.Int("n", 64, "cells per rank")
	iters = flag.Int("iters", 50, "sweep iterations")
)

func main() {
	np := flag.Int("np", 4, "number of processes")
	flag.Parse()

	mpj.Register("halo1d", haloApp)
	if mpj.Main() {
		return
	}
	if err := mpj.RunLocal(*np, haloApp); err != nil {
		log.Fatal(err)
	}
}
