// Monte-Carlo estimation of pi: every rank samples independently and a
// Reduce combines the hit counts — the classic first "real" MPI program,
// exercising Reduce, Bcast and per-rank RNG streams, written against the
// typed API (mpj.Bcast/mpj.Reduce over plain slices).
//
//	go run ./examples/pi -np 4 -samples 4000000
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"mpj"
)

// samplesFlag is read on rank 0 and broadcast, demonstrating the
// bcast-the-config idiom.
var samplesFlag = flag.Int64("samples", 1_000_000, "total number of samples")

func piApp(w *mpj.Comm) error {
	rank, size := w.Rank(), w.Size()

	// Rank 0 owns the configuration; everyone else learns it by Bcast.
	cfg := []int64{0}
	if rank == 0 {
		cfg[0] = *samplesFlag
	}
	if err := mpj.Bcast(w, cfg, 0); err != nil {
		return err
	}
	total := cfg[0]
	mine := total / int64(size)
	if int64(rank) < total%int64(size) {
		mine++
	}

	// Independent stream per rank.
	rng := rand.New(rand.NewSource(0x9E3779B9*int64(rank) + 1))
	var hits int64
	for i := int64(0); i < mine; i++ {
		x, y := rng.Float64(), rng.Float64()
		if x*x+y*y <= 1 {
			hits++
		}
	}

	global := make([]int64, 1)
	if err := mpj.Reduce(w, []int64{hits}, global, mpj.Sum[int64](), 0); err != nil {
		return err
	}
	if rank == 0 {
		pi := 4 * float64(global[0]) / float64(total)
		fmt.Printf("pi ≈ %.6f (error %+.2e) from %d samples on %d ranks\n",
			pi, pi-math.Pi, total, size)
	}
	return nil
}

func main() {
	np := flag.Int("np", 4, "number of processes")
	flag.Parse()

	mpj.Register("pi", piApp)
	if mpj.Main() {
		return
	}
	if err := mpj.RunLocal(*np, piApp); err != nil {
		log.Fatal(err)
	}
}
