// Ring-pipeline N-body: direct-summation gravity where each rank owns a
// block of bodies and body positions circulate around a ring of processes
// (the systolic algorithm) — a bandwidth-bound workload exercising
// SendrecvReplace and Allgather.
//
//	go run ./examples/nbody -np 4 -bodies 1024 -steps 5
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"mpj"
)

var (
	nBodies = flag.Int("bodies", 512, "total number of bodies")
	steps   = flag.Int("steps", 3, "time steps")
	dt      = flag.Float64("dt", 1e-3, "time step size")
)

const (
	softening = 1e-3
	pipeTag   = 11
)

func nbodyApp(w *mpj.Comm) error {
	rank, size := w.Rank(), w.Size()
	n := *nBodies
	if n%size != 0 {
		n += size - n%size // round up to a multiple of the ranks
	}
	local := n / size

	// Body state: x,y,z,mass per body (struct-of-arrays packed as AoS
	// rows of 4 doubles so a block moves as one contiguous buffer).
	mine := make([]float64, local*4)
	vel := make([]float64, local*3)
	rng := rand.New(rand.NewSource(int64(rank) + 1))
	for i := 0; i < local; i++ {
		mine[i*4+0] = rng.Float64()*2 - 1
		mine[i*4+1] = rng.Float64()*2 - 1
		mine[i*4+2] = rng.Float64()*2 - 1
		mine[i*4+3] = 1.0 / float64(n)
	}

	right := (rank + 1) % size
	left := (rank - 1 + size) % size

	for s := 0; s < *steps; s++ {
		acc := make([]float64, local*3)
		// The pipeline buffer starts as my own block and visits every
		// rank once.
		pipe := append([]float64(nil), mine...)
		for stage := 0; stage < size; stage++ {
			accumulate(mine, pipe, acc)
			if stage < size-1 {
				if _, err := w.SendrecvReplace(pipe, 0, local*4, mpj.DOUBLE,
					right, pipeTag, left, pipeTag); err != nil {
					return fmt.Errorf("pipeline stage %d: %w", stage, err)
				}
			}
		}
		// Leapfrog update.
		for i := 0; i < local; i++ {
			for d := 0; d < 3; d++ {
				vel[i*3+d] += acc[i*3+d] * *dt
				mine[i*4+d] += vel[i*3+d] * *dt
			}
		}

		// Diagnostics: total kinetic energy via Allreduce.
		var ke float64
		for i := 0; i < local; i++ {
			v2 := vel[i*3]*vel[i*3] + vel[i*3+1]*vel[i*3+1] + vel[i*3+2]*vel[i*3+2]
			ke += 0.5 * mine[i*4+3] * v2
		}
		total := make([]float64, 1)
		if err := w.Allreduce([]float64{ke}, 0, total, 0, 1, mpj.DOUBLE, mpj.SUM); err != nil {
			return err
		}
		if rank == 0 {
			fmt.Printf("step %d: kinetic energy %.6e\n", s+1, total[0])
		}
	}
	return nil
}

// accumulate adds the gravitational acceleration of the visiting block on
// the local bodies.
func accumulate(mine, visitors, acc []float64) {
	for i := 0; i < len(mine)/4; i++ {
		xi, yi, zi := mine[i*4], mine[i*4+1], mine[i*4+2]
		var ax, ay, az float64
		for j := 0; j < len(visitors)/4; j++ {
			dx := visitors[j*4] - xi
			dy := visitors[j*4+1] - yi
			dz := visitors[j*4+2] - zi
			r2 := dx*dx + dy*dy + dz*dz + softening
			inv := visitors[j*4+3] / (r2 * math.Sqrt(r2))
			ax += dx * inv
			ay += dy * inv
			az += dz * inv
		}
		acc[i*3] += ax
		acc[i*3+1] += ay
		acc[i*3+2] += az
	}
}

func main() {
	np := flag.Int("np", 4, "number of processes")
	flag.Parse()

	mpj.Register("nbody", nbodyApp)
	if mpj.Main() {
		return
	}
	if err := mpj.RunLocal(*np, nbodyApp); err != nil {
		log.Fatal(err)
	}
}
