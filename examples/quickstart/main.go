// Quickstart: the smallest complete MPJ program, written against the typed
// API. Every rank greets, the ranks exchange messages around a ring, and
// an allreduce computes a global sum — the "hello world" of message
// passing. Buffers are plain Go slices; the element type selects the wire
// datatype at compile time (mpj.Send(w, buf, ...) instead of
// w.Send(buf, 0, len(buf), mpj.INT, ...)).
//
// Run locally (all ranks as goroutines in this process):
//
//	go run ./examples/quickstart -np 4
package main

import (
	"flag"
	"fmt"
	"log"

	"mpj"
)

func quickstart(w *mpj.Comm) error {
	rank, size := w.Rank(), w.Size()
	fmt.Printf("hello from rank %d of %d on %s\n", rank, size, mpj.ProcessorName())

	// Pass a token around the ring: post the receive, send, then wait.
	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	got := make([]int32, 1)
	rr, err := mpj.Irecv(w, got, left, 0)
	if err != nil {
		return fmt.Errorf("ring exchange: %w", err)
	}
	if err := mpj.Send(w, []int32{int32(rank)}, right, 0); err != nil {
		return fmt.Errorf("ring exchange: %w", err)
	}
	if _, err := rr.Wait(); err != nil {
		return fmt.Errorf("ring exchange: %w", err)
	}
	fmt.Printf("rank %d received token %d from rank %d\n", rank, got[0], left)

	// Global sum of all ranks.
	sum := make([]int64, 1)
	if err := mpj.Allreduce(w, []int64{int64(rank)}, sum, mpj.Sum[int64]()); err != nil {
		return fmt.Errorf("allreduce: %w", err)
	}
	if rank == 0 {
		fmt.Printf("sum of ranks 0..%d = %d\n", size-1, sum[0])
	}
	return nil
}

func main() {
	np := flag.Int("np", 4, "number of processes")
	flag.Parse()

	mpj.Register("quickstart", quickstart)
	if mpj.Main() {
		return // ran as a spawned slave
	}
	if err := mpj.RunLocal(*np, quickstart); err != nil {
		log.Fatal(err)
	}
}
