package mpj

// The typed API: generic free functions over *Comm, the recommended way to
// write new MPJ programs. Where the classic (Java-shaped) surface takes a
// `(buf any, off, count int, dt Datatype, ...)` tuple, the typed surface
// takes a plain Go slice:
//
//	// classic                                       // typed
//	w.Send(buf, 0, len(buf), mpj.DOUBLE, dst, tag)   mpj.Send(w, buf, dst, tag)
//	w.Allreduce(in, 0, out, 0, n, mpj.LONG, mpj.SUM) mpj.Allreduce(w, in, out, mpj.Sum[int64]())
//
// The element type selects the datatype at compile time (see Scalar), so a
// mismatched buffer/datatype pair — a runtime error on the classic surface
// — cannot be written, and reduction operations are checked against the
// element type too (mpj.Sum[bool] does not compile). Offsets are expressed
// by slicing: `mpj.Irecv(w, cur[:n], up, tag)` receives into the first n
// elements. Both surfaces are interoperable — they share the datatype
// layer, the wire encoding and the communicator — and the typed functions
// additionally skip the per-call interface boxing and, for raw-layout
// element types, move slices with single memmoves straight into (out of)
// pooled wire frames.
//
// These are free functions because Go methods cannot take type parameters.

import (
	"fmt"

	"mpj/internal/core"
)

// Constraints, re-exported from the implementation.
type (
	// Scalar is the constraint satisfied by element types the typed API
	// can transmit: bool, byte, int16, int32 (rune), int64, int, float32,
	// float64, and the MaxLoc/MinLoc pair types DoubleInt/IntInt/FloatInt.
	Scalar = core.Scalar
	// Number constrains the arithmetic reductions (Sum, Prod, Max, Min).
	Number = core.Number
	// Integer constrains the bitwise reductions (BAnd, BOr, BXor).
	Integer = core.Integer
	// Pair constrains the MaxLoc/MinLoc reductions.
	Pair = core.Pair
)

// DatatypeOf returns the Datatype describing []T buffers, for mixing the
// typed API with the classic surface (e.g. a typed send matched by a
// classic receive, or the persistent Commit* collectives, which take the
// classic argument shape).
func DatatypeOf[T Scalar]() Datatype { return core.DatatypeFor[T]() }

// ---------------------------------------------------------------------
// Point-to-point.
// ---------------------------------------------------------------------

// Send performs a blocking standard-mode send of buf to rank dst — the
// typed MPI_Send. The whole slice is sent; use a subslice for offsets.
func Send[T Scalar](c *Comm, buf []T, dst, tag int) error {
	return core.TypedSend(c, buf, dst, tag)
}

// Recv performs a blocking receive of up to len(buf) elements from rank
// src (or AnySource) — the typed MPI_Recv.
func Recv[T Scalar](c *Comm, buf []T, src, tag int) (*Status, error) {
	return core.TypedRecv(c, buf, src, tag)
}

// Isend starts a standard-mode non-blocking send of buf — the typed
// MPI_Isend. The returned Request completes once buf is reusable.
func Isend[T Scalar](c *Comm, buf []T, dst, tag int) (*Request, error) {
	return core.TypedIsend(c, buf, dst, tag)
}

// Irecv starts a non-blocking receive into buf — the typed MPI_Irecv. buf
// must not be read until the request completes.
func Irecv[T Scalar](c *Comm, buf []T, src, tag int) (*Request, error) {
	return core.TypedIrecv(c, buf, src, tag)
}

// Sendrecv sends sbuf to dst and concurrently receives into rbuf from src
// (or AnySource) — the typed MPI_Sendrecv, safe against the exchange
// deadlock of two blocking sends meeting head-on. The send and receive
// element types may differ; the returned status describes the receive.
// The segmented ring schedules use the same paired Isend/Irecv internally;
// this is the surface form for halo exchanges and neighbour shifts.
func Sendrecv[S, R Scalar](c *Comm, sbuf []S, dst, stag int, rbuf []R, src, rtag int) (*Status, error) {
	return core.TypedSendrecv(c, sbuf, dst, stag, rbuf, src, rtag)
}

// SendInit creates a persistent standard-mode send request over buf — the
// typed MPI_Send_init. Each Start sends the slice's current contents.
func SendInit[T Scalar](c *Comm, buf []T, dst, tag int) (*Prequest, error) {
	return c.SendInit(buf, 0, len(buf), DatatypeOf[T](), dst, tag)
}

// RecvInit creates a persistent receive request over buf — the typed
// MPI_Recv_init.
func RecvInit[T Scalar](c *Comm, buf []T, src, tag int) (*Prequest, error) {
	return c.RecvInit(buf, 0, len(buf), DatatypeOf[T](), src, tag)
}

// ---------------------------------------------------------------------
// Collectives. All are collective over c: every member must call them
// with consistent lengths, in the same order.
// ---------------------------------------------------------------------

// Bcast broadcasts buf from the root to the same slice on every member —
// the typed MPI_Bcast.
func Bcast[T Scalar](c *Comm, buf []T, root int) error {
	return c.Bcast(buf, 0, len(buf), DatatypeOf[T](), root)
}

// Ibcast starts a non-blocking Bcast.
func Ibcast[T Scalar](c *Comm, buf []T, root int) (*CollRequest, error) {
	return c.Ibcast(buf, 0, len(buf), DatatypeOf[T](), root)
}

// Gather collects every member's sbuf into the root's rbuf, rank r's block
// landing at rbuf[r*len(sbuf):] — the typed MPI_Gather. rbuf must hold
// Size()*len(sbuf) elements on the root and may be nil elsewhere.
func Gather[T Scalar](c *Comm, sbuf, rbuf []T, root int) error {
	dt := DatatypeOf[T]()
	return c.Gather(sbuf, 0, len(sbuf), dt, rbuf, 0, len(sbuf), dt, root)
}

// Igather starts a non-blocking Gather.
func Igather[T Scalar](c *Comm, sbuf, rbuf []T, root int) (*CollRequest, error) {
	dt := DatatypeOf[T]()
	return c.Igather(sbuf, 0, len(sbuf), dt, rbuf, 0, len(sbuf), dt, root)
}

// Scatter distributes len(rbuf) elements per rank from the root's sbuf
// (rank r's block at sbuf[r*len(rbuf):]) into every member's rbuf — the
// typed MPI_Scatter. sbuf must hold Size()*len(rbuf) elements on the root
// and may be nil elsewhere.
func Scatter[T Scalar](c *Comm, sbuf, rbuf []T, root int) error {
	dt := DatatypeOf[T]()
	return c.Scatter(sbuf, 0, len(rbuf), dt, rbuf, 0, len(rbuf), dt, root)
}

// Iscatter starts a non-blocking Scatter.
func Iscatter[T Scalar](c *Comm, sbuf, rbuf []T, root int) (*CollRequest, error) {
	dt := DatatypeOf[T]()
	return c.Iscatter(sbuf, 0, len(rbuf), dt, rbuf, 0, len(rbuf), dt, root)
}

// Allgather gathers every member's sbuf to every member's rbuf — the typed
// MPI_Allgather. rbuf must hold Size()*len(sbuf) elements.
func Allgather[T Scalar](c *Comm, sbuf, rbuf []T) error {
	dt := DatatypeOf[T]()
	return c.Allgather(sbuf, 0, len(sbuf), dt, rbuf, 0, len(sbuf), dt)
}

// Iallgather starts a non-blocking Allgather.
func Iallgather[T Scalar](c *Comm, sbuf, rbuf []T) (*CollRequest, error) {
	dt := DatatypeOf[T]()
	return c.Iallgather(sbuf, 0, len(sbuf), dt, rbuf, 0, len(sbuf), dt)
}

// Alltoall exchanges a distinct len(sbuf)/Size()-element block between
// every pair of members — the typed MPI_Alltoall. len(sbuf) must be a
// multiple of Size(); rbuf must be at least as long as sbuf.
func Alltoall[T Scalar](c *Comm, sbuf, rbuf []T) error {
	bs, err := alltoallBlock(c, len(sbuf))
	if err != nil {
		return err
	}
	dt := DatatypeOf[T]()
	return c.Alltoall(sbuf, 0, bs, dt, rbuf, 0, bs, dt)
}

// Ialltoall starts a non-blocking Alltoall.
func Ialltoall[T Scalar](c *Comm, sbuf, rbuf []T) (*CollRequest, error) {
	bs, err := alltoallBlock(c, len(sbuf))
	if err != nil {
		return nil, err
	}
	dt := DatatypeOf[T]()
	return c.Ialltoall(sbuf, 0, bs, dt, rbuf, 0, bs, dt)
}

// alltoallBlock derives the per-peer block size of an Alltoall from the
// send buffer length.
func alltoallBlock(c *Comm, n int) (int, error) {
	size := c.Size()
	if n%size != 0 {
		return 0, fmt.Errorf("%w: alltoall buffer of %d elements does not divide into %d blocks",
			ErrCount, n, size)
	}
	return n / size, nil
}

// ---------------------------------------------------------------------
// Varying-count (V family) collectives. Per-rank block layouts are
// expressed as count/displacement int slices — the count-slice surface:
// rank r's block holds counts[r] elements and starts at element displs[r]
// of the gathered buffer. A rank's own contribution length comes from its
// slice (len(sbuf) for Gatherv, len(rbuf) for Scatterv), so it cannot
// disagree with the buffer holding it. Layouts are validated before any
// communication: malformed counts report ErrCount, negative, out-of-range
// or overlapping receive displacements report ErrArg.
// ---------------------------------------------------------------------

// Gatherv collects every member's sbuf into the root's rbuf, rank r's
// len(sbuf) elements landing at rbuf[displs[r]:][:rcounts[r]] — the typed
// MPI_Gatherv. rcounts/displs are read on the root only; rbuf may be nil
// elsewhere.
func Gatherv[T Scalar](c *Comm, sbuf, rbuf []T, rcounts, displs []int, root int) error {
	return core.TypedGatherv(c, sbuf, rbuf, rcounts, displs, root)
}

// Igatherv starts a non-blocking Gatherv.
func Igatherv[T Scalar](c *Comm, sbuf, rbuf []T, rcounts, displs []int, root int) (*CollRequest, error) {
	return core.TypedIgatherv(c, sbuf, rbuf, rcounts, displs, root)
}

// Scatterv distributes varying counts from the root: rank r's rbuf is
// filled from sbuf[displs[r]:][:scounts[r]] — the typed MPI_Scatterv.
// scounts/displs are read on the root only; sbuf may be nil elsewhere.
func Scatterv[T Scalar](c *Comm, sbuf []T, scounts, displs []int, rbuf []T, root int) error {
	return core.TypedScatterv(c, sbuf, scounts, displs, rbuf, root)
}

// Iscatterv starts a non-blocking Scatterv.
func Iscatterv[T Scalar](c *Comm, sbuf []T, scounts, displs []int, rbuf []T, root int) (*CollRequest, error) {
	return core.TypedIscatterv(c, sbuf, scounts, displs, rbuf, root)
}

// Allgatherv gathers varying counts to every member: rank r's whole sbuf
// lands at rbuf[displs[r]:][:rcounts[r]] on every member — the typed
// MPI_Allgatherv.
func Allgatherv[T Scalar](c *Comm, sbuf, rbuf []T, rcounts, displs []int) error {
	return core.TypedAllgatherv(c, sbuf, rbuf, rcounts, displs)
}

// Iallgatherv starts a non-blocking Allgatherv.
func Iallgatherv[T Scalar](c *Comm, sbuf, rbuf []T, rcounts, displs []int) (*CollRequest, error) {
	return core.TypedIallgatherv(c, sbuf, rbuf, rcounts, displs)
}

// Alltoallv exchanges varying counts between every pair of members: the
// block for peer r is sbuf[sdispls[r]:][:scounts[r]], and peer r's block
// lands at rbuf[rdispls[r]:][:rcounts[r]] — the typed MPI_Alltoallv.
func Alltoallv[T Scalar](c *Comm, sbuf []T, scounts, sdispls []int, rbuf []T, rcounts, rdispls []int) error {
	return core.TypedAlltoallv(c, sbuf, scounts, sdispls, rbuf, rcounts, rdispls)
}

// Ialltoallv starts a non-blocking Alltoallv.
func Ialltoallv[T Scalar](c *Comm, sbuf []T, scounts, sdispls []int, rbuf []T, rcounts, rdispls []int) (*CollRequest, error) {
	return core.TypedIalltoallv(c, sbuf, scounts, sdispls, rbuf, rcounts, rdispls)
}

// ReduceScatter combines every member's sbuf element-wise with op and
// scatters the result: rank r's rbuf receives the rcounts[r] elements
// starting at element sum(rcounts[:r]) of the combination — the typed
// MPI_Reduce_scatter. len(sbuf) must equal sum(rcounts) and len(rbuf)
// must hold rcounts[r] elements.
func ReduceScatter[T Scalar](c *Comm, sbuf, rbuf []T, rcounts []int, op ReduceOp[T]) error {
	return core.TypedReduceScatter(c, sbuf, rbuf, rcounts, op.op)
}

// IreduceScatter starts a non-blocking ReduceScatter.
func IreduceScatter[T Scalar](c *Comm, sbuf, rbuf []T, rcounts []int, op ReduceOp[T]) (*CollRequest, error) {
	return core.TypedIreduceScatter(c, sbuf, rbuf, rcounts, op.op)
}

// Reduce combines every member's sbuf element-wise with op, leaving the
// result in the root's rbuf — the typed MPI_Reduce. rbuf must be as long
// as sbuf on the root and may be nil elsewhere.
func Reduce[T Scalar](c *Comm, sbuf, rbuf []T, op ReduceOp[T], root int) error {
	return c.Reduce(sbuf, 0, rbuf, 0, len(sbuf), DatatypeOf[T](), op.op, root)
}

// Ireduce starts a non-blocking Reduce.
func Ireduce[T Scalar](c *Comm, sbuf, rbuf []T, op ReduceOp[T], root int) (*CollRequest, error) {
	return c.Ireduce(sbuf, 0, rbuf, 0, len(sbuf), DatatypeOf[T](), op.op, root)
}

// Allreduce combines every member's sbuf element-wise with op, leaving the
// result in every member's rbuf — the typed MPI_Allreduce.
func Allreduce[T Scalar](c *Comm, sbuf, rbuf []T, op ReduceOp[T]) error {
	return c.Allreduce(sbuf, 0, rbuf, 0, len(sbuf), DatatypeOf[T](), op.op)
}

// Iallreduce starts a non-blocking Allreduce.
func Iallreduce[T Scalar](c *Comm, sbuf, rbuf []T, op ReduceOp[T]) (*CollRequest, error) {
	return c.Iallreduce(sbuf, 0, rbuf, 0, len(sbuf), DatatypeOf[T](), op.op)
}

// Scan computes the inclusive prefix reduction: rank r's rbuf receives the
// combination of the sbuf contributions of ranks 0..r — the typed
// MPI_Scan.
func Scan[T Scalar](c *Comm, sbuf, rbuf []T, op ReduceOp[T]) error {
	return c.Scan(sbuf, 0, rbuf, 0, len(sbuf), DatatypeOf[T](), op.op)
}

// Iscan starts a non-blocking Scan.
func Iscan[T Scalar](c *Comm, sbuf, rbuf []T, op ReduceOp[T]) (*CollRequest, error) {
	return c.Iscan(sbuf, 0, rbuf, 0, len(sbuf), DatatypeOf[T](), op.op)
}

// ---------------------------------------------------------------------
// One-sided communication. The window element type is fixed at WinCreate
// (from the registered slice); these wrappers transmit whole slices with
// the matching datatype inferred from T.
// ---------------------------------------------------------------------

// PutT writes buf into target's window at element displacement tdisp —
// the typed Win.Put.
func PutT[T Scalar](w *Win, buf []T, target, tdisp int) error {
	return w.Put(buf, 0, len(buf), DatatypeOf[T](), target, tdisp)
}

// GetT reads len(buf) elements from target's window at element
// displacement tdisp into buf — the typed Win.Get. For remote targets the
// data is valid after the epoch closes (Fence, or Unlock of a lock on
// target).
func GetT[T Scalar](w *Win, buf []T, target, tdisp int) error {
	return w.Get(buf, 0, len(buf), DatatypeOf[T](), target, tdisp)
}

// AccumulateT combines buf element-wise into target's window at element
// displacement tdisp with the predefined reduction op — the typed
// Win.Accumulate.
func AccumulateT[T Scalar](w *Win, buf []T, target, tdisp int, op ReduceOp[T]) error {
	return w.Accumulate(buf, 0, len(buf), DatatypeOf[T](), target, tdisp, op.op)
}

// FetchAndOpT atomically combines origin into target's window element at
// displacement tdisp with op and returns the element's prior value — the
// typed Win.FetchAndOp. For remote targets the returned pointer's value
// is valid after the epoch closes (Fence, or Unlock of a lock on target).
func FetchAndOpT[T Scalar](w *Win, origin T, target, tdisp int, op ReduceOp[T]) (*T, error) {
	result := make([]T, 1)
	if err := w.FetchAndOp([]T{origin}, 0, result, 0, DatatypeOf[T](), target, tdisp, op.op); err != nil {
		return nil, err
	}
	return &result[0], nil
}

// CompareAndSwapT atomically compares target's window element at
// displacement tdisp with compare, stores origin there on a match, and
// returns the element's prior value — the typed Win.CompareAndSwap. The
// swap happened iff the returned prior value equals compare; for remote
// targets the value is valid after the epoch closes.
func CompareAndSwapT[T Scalar](w *Win, origin, compare T, target, tdisp int) (*T, error) {
	result := make([]T, 1)
	if err := w.CompareAndSwap([]T{origin}, 0, []T{compare}, 0, result, 0, DatatypeOf[T](), target, tdisp); err != nil {
		return nil, err
	}
	return &result[0], nil
}

// ---------------------------------------------------------------------
// Reduction operations. A ReduceOp[T] carries both the operation and the
// element type it applies to, so an op/buffer mismatch cannot compile.
// ---------------------------------------------------------------------

// ReduceOp is a reduction operation bound to element type T.
type ReduceOp[T Scalar] struct{ op *Op }

// Op exposes the untyped operation, for mixing with the classic surface.
func (o ReduceOp[T]) Op() *Op { return o.op }

// OpFor wraps an untyped operation (a predefined one or a NewOp result)
// for use with []T buffers. Type compatibility is checked at run time, as
// on the classic surface.
func OpFor[T Scalar](op *Op) ReduceOp[T] { return ReduceOp[T]{op} }

// Sum is the element-wise sum reduction — MPJ.SUM.
func Sum[T Number]() ReduceOp[T] { return ReduceOp[T]{core.SumOp} }

// Prod is the element-wise product reduction — MPJ.PROD.
func Prod[T Number]() ReduceOp[T] { return ReduceOp[T]{core.ProdOp} }

// Max is the element-wise maximum reduction — MPJ.MAX.
func Max[T Number]() ReduceOp[T] { return ReduceOp[T]{core.MaxOp} }

// Min is the element-wise minimum reduction — MPJ.MIN.
func Min[T Number]() ReduceOp[T] { return ReduceOp[T]{core.MinOp} }

// LAnd is the element-wise logical AND — MPJ.LAND.
func LAnd() ReduceOp[bool] { return ReduceOp[bool]{core.LAndOp} }

// LOr is the element-wise logical OR — MPJ.LOR.
func LOr() ReduceOp[bool] { return ReduceOp[bool]{core.LOrOp} }

// LXor is the element-wise logical XOR — MPJ.LXOR.
func LXor() ReduceOp[bool] { return ReduceOp[bool]{core.LXorOp} }

// BAnd is the element-wise bitwise AND — MPJ.BAND.
func BAnd[T Integer]() ReduceOp[T] { return ReduceOp[T]{core.BAndOp} }

// BOr is the element-wise bitwise OR — MPJ.BOR.
func BOr[T Integer]() ReduceOp[T] { return ReduceOp[T]{core.BOrOp} }

// BXor is the element-wise bitwise XOR — MPJ.BXOR.
func BXor[T Integer]() ReduceOp[T] { return ReduceOp[T]{core.BXorOp} }

// MaxLoc is the maximum-with-index reduction over pair data — MPJ.MAXLOC.
func MaxLoc[T Pair]() ReduceOp[T] { return ReduceOp[T]{core.MaxLocOp} }

// MinLoc is the minimum-with-index reduction over pair data — MPJ.MINLOC.
func MinLoc[T Pair]() ReduceOp[T] { return ReduceOp[T]{core.MinLocOp} }

// OpOf builds a reduction from a typed binary function, usable with []T
// buffers — the typed MPI_Op_create. f must be associative; the library
// additionally assumes commutativity when shaping reduction trees.
func OpOf[T Scalar](f func(a, b T) T) ReduceOp[T] {
	return ReduceOp[T]{core.OpFromFunc("mpj.typed.user", f)}
}
