// Package mpj is a pure-Go reference implementation of MPJ, the MPI-like
// message-passing API proposed by the Message-Passing Working Group of the
// Java Grande Forum and sketched in Baker & Carpenter, "MPJ: A Proposed
// Java Message Passing API and Environment for High Performance
// Computing" (2000).
//
// The package offers three ways to run a parallel program:
//
//   - RunLocal executes np ranks as goroutines inside the calling process,
//     connected by an in-memory transport — ideal for development, tests
//     and benchmarks;
//   - Run launches a distributed job through MPJ daemons discovered via
//     the lookup service, with slave processes wired into an all-to-all
//     TCP mesh (the paper's mpjrun);
//   - SlaveMain is the entry point a spawned slave process calls (the
//     paper's MPJSlave).
//
// Applications are functions from a world communicator to an error,
// registered by name (the analogue of the user class extending
// MPJApplication):
//
//	func main() {
//	    mpj.Register("hello", func(w *mpj.Comm) error {
//	        fmt.Printf("hello from %d of %d\n", w.Rank(), w.Size())
//	        return nil
//	    })
//	    mpj.Main() // dispatches to SlaveMain in slave processes
//	}
//
// See ARCHITECTURE.md at the repository root for where this package sits in
// the layer stack.
package mpj

import (
	"mpj/internal/core"
	"mpj/internal/device"
	"mpj/internal/prof"
)

// Core communication types, re-exported from the implementation.
type (
	// Comm is an intra-communicator; see the methods on core.Comm.
	Comm = core.Comm
	// CartComm is a communicator with a Cartesian topology.
	CartComm = core.CartComm
	// GraphComm is a communicator with a graph topology.
	GraphComm = core.GraphComm
	// Intercomm is an inter-communicator between two disjoint groups.
	Intercomm = core.Intercomm
	// Group is an ordered set of processes.
	Group = core.Group
	// Datatype describes buffer element encoding.
	Datatype = core.Datatype
	// Op is a reduction operation.
	Op = core.Op
	// Request is a non-blocking operation handle.
	Request = core.Request
	// CollRequest is a non-blocking collective handle returned by the I*
	// family (Ibarrier, Ibcast, Iallreduce, ...); it is driven by a
	// compiled communication schedule and completes through Wait/Test.
	CollRequest = core.CollRequest
	// AnyRequest is the completion surface shared by Request, Prequest,
	// CollRequest and PcollRequest; WaitAllRequests drains mixed batches.
	AnyRequest = core.AnyRequest
	// Prequest is a persistent communication request.
	Prequest = core.Prequest
	// PcollRequest is a persistent collective request created by the
	// Commit* methods (CommitBcast, CommitAllreduce, CommitAlltoallv,
	// ...): the schedule is committed once and Start/Wait activate it any
	// number of times, re-reading the user buffers each activation.
	PcollRequest = core.PcollRequest
	// Status reports a receive/probe outcome.
	Status = core.Status
	// DoubleInt pairs a float64 with an index for MaxLoc/MinLoc.
	DoubleInt = core.DoubleInt
	// IntInt pairs an int32 with an index for MaxLoc/MinLoc.
	IntInt = core.IntInt
	// FloatInt pairs a float32 with an index for MaxLoc/MinLoc.
	FloatInt = core.FloatInt
	// AllreduceAlgorithm selects an Allreduce implementation.
	AllreduceAlgorithm = core.AllreduceAlgorithm
	// CollAlg selects the collective algorithm family (classic trees vs
	// the segmented/ring large-message schedules); see Comm.SetCollAlg,
	// the MPJ_COLL_ALG environment variable and README "Tuning".
	CollAlg = core.CollAlg
	// ProfSnapshot is a point-in-time copy of a communicator's profiling
	// counters, returned by Comm.ProfSnapshot when profiling is enabled
	// (the MPJ_PROF environment variable, the mpjrun -prof flag); see
	// README "Observability".
	ProfSnapshot = prof.Snapshot
	// Win is a one-sided communication window created by Comm.WinCreate:
	// Put/Get/Accumulate move data into any member's registered buffer
	// without a matching receive, under Fence or Lock/Unlock epochs; see
	// README "One-sided communication".
	Win = core.Win
)

// One-sided lock modes (Win.Lock).
const (
	// LockShared admits any number of concurrent shared lock holders.
	LockShared = core.LockShared
	// LockExclusive admits a single lock holder.
	LockExclusive = core.LockExclusive
)

// InPlace is the MPI_IN_PLACE sentinel: passed as the send buffer of
// ReduceScatter or Allgatherv, the rank's contribution is taken from (and
// the result written to) its slice of the receive buffer.
var InPlace = core.InPlace

// Collective algorithm selectors (see CollAlg and Comm.SetCollAlg).
const (
	// CollAlgAuto switches algorithms by payload and communicator size.
	CollAlgAuto = core.CollAlgAuto
	// CollAlgClassic forces the latency-optimised tree algorithms.
	CollAlgClassic = core.CollAlgClassic
	// CollAlgSegmented forces the segmented pipeline / ring algorithms.
	CollAlgSegmented = core.CollAlgSegmented
	// CollAlgRing is CollAlgSegmented under its ring-collective name.
	CollAlgRing = core.CollAlgRing
	// CollAlgHier prefers the two-level locality-aware schedules: an
	// intra-group phase over co-located peers and an inter-group exchange
	// between per-group leaders (falls back to auto on comms that do not
	// span locality groups). See Comm.SetLocalityTable and README
	// "Tuning".
	CollAlgHier = core.CollAlgHier
)

// WithCollAlg forces the collective algorithm family on c and returns c,
// for call-site chaining in benchmarks and tuning experiments:
//
//	w.SetCollSegSize(64 << 10)
//	err := mpj.WithCollAlg(w, mpj.CollAlgSegmented).Bcast(buf, 0, n, mpj.DOUBLE, 0)
//
// Like all collective configuration it must be applied consistently on
// every member of the communicator.
func WithCollAlg(c *Comm, a CollAlg) *Comm {
	c.SetCollAlg(a)
	return c
}

// Base datatypes (MPJ.BYTE, MPJ.INT, ...).
var (
	BYTE       = core.Byte
	BOOLEAN    = core.Boolean
	CHAR       = core.Char
	SHORT      = core.Short
	INT        = core.Int
	LONG       = core.Long
	GOINT      = core.GoInt
	FLOAT      = core.Float
	DOUBLE     = core.Double
	OBJECT     = core.Object
	DOUBLE_INT = core.DoubleInt2
	INT_INT    = core.IntInt2
	FLOAT_INT  = core.FloatInt2
)

// Predefined reduction operations (MPJ.SUM, MPJ.MAX, ...).
var (
	MAX    = core.MaxOp
	MIN    = core.MinOp
	SUM    = core.SumOp
	PROD   = core.ProdOp
	LAND   = core.LAndOp
	LOR    = core.LOrOp
	LXOR   = core.LXorOp
	BAND   = core.BAndOp
	BOR    = core.BOrOp
	BXOR   = core.BXorOp
	MAXLOC = core.MaxLocOp
	MINLOC = core.MinLocOp
)

// Error classes raised by the API; match with errors.Is. The operations
// wrap them with context.
var (
	// ErrBuffer reports an invalid buffer argument.
	ErrBuffer = core.ErrBuffer
	// ErrCount reports an invalid count argument (or slice length).
	ErrCount = core.ErrCount
	// ErrType reports an invalid or mismatched datatype argument.
	ErrType = core.ErrType
	// ErrTag reports an invalid tag argument.
	ErrTag = core.ErrTag
	// ErrRank reports a rank outside the communicator's group.
	ErrRank = core.ErrRank
	// ErrComm reports an invalid (e.g. freed) communicator.
	ErrComm = core.ErrComm
	// ErrGroup reports an invalid group argument.
	ErrGroup = core.ErrGroup
	// ErrOp reports a reduction op applied to an unsupported datatype.
	ErrOp = core.ErrOp
	// ErrDims reports invalid topology dimensions.
	ErrDims = core.ErrDims
	// ErrTopology reports an invalid topology argument.
	ErrTopology = core.ErrTopology
	// ErrTruncate reports a received message longer than the receive
	// buffer, as in MPI_ERR_TRUNCATE.
	ErrTruncate = core.ErrTruncate
	// ErrArg reports an invalid argument that fits no more specific
	// class — negative, out-of-range or overlapping displacements in
	// the varying-count collectives, as in MPI_ERR_ARG.
	ErrArg = core.ErrArg
	// ErrRankFailed reports that a member process of the communicator
	// failed, as in ULFM's MPI_ERR_PROC_FAILED: the operation will not
	// complete, but surviving members remain usable — recover with
	// Comm.Revoke, Comm.Shrink and Comm.Agree. The failed process's world
	// rank travels in the error; retrieve it with FailedRank.
	ErrRankFailed = core.ErrRankFailed
	// ErrRevoked reports an operation on a revoked communicator, as in
	// ULFM's MPI_ERR_REVOKED: after some member calls Revoke, every
	// pending and future operation fails until the survivors Shrink.
	ErrRevoked = core.ErrRevoked
	// ErrSpawn reports a failed Comm.Spawn: replacements could not be
	// launched or the rebuilt mesh could not be bootstrapped. Spawn is
	// bounded in time — it fails with this rather than hanging — and the
	// survivors' communicator remains usable for a retry.
	ErrSpawn = core.ErrSpawn
)

// RankFailedError is the typed error behind every ErrRankFailed failure;
// Rank is the world rank of the dead process.
type RankFailedError = core.RankFailedError

// FailedRank extracts the world rank of the dead process from an
// ErrRankFailed error chain; ok is false when err carries none.
func FailedRank(err error) (rank int, ok bool) { return core.FailedRank(err) }

// Wildcards and special values.
const (
	// AnySource matches any source rank in receives and probes.
	AnySource = core.AnySource
	// AnyTag matches any tag in receives and probes.
	AnyTag = core.AnyTag
	// Undefined marks out-of-group ranks, null processes and unknown counts.
	Undefined = core.Undefined
)

// Group/communicator comparison results.
const (
	Ident     = core.Ident
	Congruent = core.Congruent
	Similar   = core.Similar
	Unequal   = core.Unequal
)

// Allreduce algorithm choices (see Comm.AllreduceWith and the A1 bench).
const (
	AllreduceAuto              = core.AllreduceAuto
	AllreduceTreeBcast         = core.AllreduceTreeBcast
	AllreduceRecursiveDoubling = core.AllreduceRecursiveDoubling
	AllreduceRing              = core.AllreduceRing
	AllreduceHier              = core.AllreduceHier
)

// Derived datatype constructors.
var (
	// Contiguous builds count consecutive elements as one element.
	Contiguous = core.Contiguous
	// Vector builds a strided block pattern.
	Vector = core.Vector
	// Indexed builds an irregular block pattern.
	Indexed = core.Indexed
)

// Environment management.
var (
	// Wtime returns wall-clock seconds from a fixed origin.
	Wtime = core.Wtime
	// Wtick returns the Wtime resolution.
	Wtick = core.Wtick
	// ProcessorName returns the host name.
	ProcessorName = core.ProcessorName
	// NewGroup builds a group from world ranks.
	NewGroup = core.NewGroup
	// NewOp creates a user-defined reduction operation.
	NewOp = core.NewOp
	// RegisterType records a concrete type for OBJECT transmission.
	RegisterType = core.RegisterType
	// DimsCreate factors a process count into balanced grid dimensions.
	DimsCreate = core.DimsCreate
	// Pack serializes elements for BYTE transmission.
	Pack = core.Pack
	// Unpack deserializes elements packed by Pack.
	Unpack = core.Unpack
	// PackSize returns the packed size of count elements.
	PackSize = core.PackSize
	// WaitAny waits for one of several requests.
	WaitAny = core.WaitAny
	// TestAny tests several requests without blocking.
	TestAny = core.TestAny
	// WaitAll waits for all requests.
	WaitAll = core.WaitAll
	// WaitAllRequests waits for a mixed batch of point-to-point,
	// persistent and collective requests.
	WaitAllRequests = core.WaitAllRequests
	// StartAll starts a set of persistent requests.
	StartAll = core.StartAll
)

// DefaultEagerLimit is the standard-mode eager/rendezvous threshold.
const DefaultEagerLimit = device.DefaultEagerLimit
