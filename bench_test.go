package mpj

// Benchmarks regenerating the experiments of EXPERIMENTS.md as testing.B
// targets (one family per table/figure; cmd/mpjbench prints the same
// results as formatted tables):
//
//	F1 — layer decomposition of a round trip (Figure 1)
//	E1 — eager vs rendezvous protocol (paper §3.5(3))
//	E2 — send modes built on the minimal device ops (§3.5(4))
//	E4 — collective scaling (high-level layer)
//	E7 — object serialization overhead (§2)
//	A1 — allreduce algorithm ablation
//	A2 — eager threshold ablation
//	F2 — full job lifecycle through daemons (Figure 2)
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"io"
	"log"
	"sync"
	"testing"
	"time"

	"mpj/internal/bench"
	"mpj/internal/core"
	"mpj/internal/daemon"
	"mpj/internal/device"
	"mpj/internal/lookup"
	"mpj/internal/transport"
	"mpj/internal/wire"
)

// benchQuietLogger silences daemon logs during benchmarks.
func benchQuietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// benchSizes is the message-size sweep for the latency benchmarks.
var benchSizes = []int{64, 4096, 65536}

const stopTag = 99

// echoPair is a 2-rank in-process session whose rank 1 echoes every
// message back until it receives the stop sentinel.
type echoPair struct {
	w0    *core.Comm
	devs  []*device.Device
	wg    sync.WaitGroup
	count int
	dt    core.Datatype
}

func newEchoPair(b *testing.B, eagerLimit, count int, dt core.Datatype) *echoPair {
	b.Helper()
	eps := transport.NewChanMesh(2)
	var opts []device.Option
	if eagerLimit >= 0 {
		opts = append(opts, device.WithEagerLimit(eagerLimit))
	}
	p := &echoPair{count: count, dt: dt}
	worlds := make([]*core.Comm, 2)
	for i := 0; i < 2; i++ {
		d, err := device.Open(eps[i], opts...)
		if err != nil {
			b.Fatal(err)
		}
		w, err := core.NewWorld(d)
		if err != nil {
			b.Fatal(err)
		}
		p.devs = append(p.devs, d)
		worlds[i] = w
	}
	p.w0 = worlds[0]
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		w1 := worlds[1]
		buf := dt.Alloc(count)
		for {
			st, err := w1.Recv(buf, 0, count, dt, 0, core.AnyTag)
			if err != nil {
				return
			}
			if st.Tag == stopTag {
				return
			}
			if err := w1.Send(buf, 0, count, dt, 0, 0); err != nil {
				return
			}
		}
	}()
	return p
}

func (p *echoPair) close(b *testing.B) {
	b.Helper()
	buf := p.dt.Alloc(p.count)
	if err := p.w0.Send(buf, 0, 0, p.dt, 1, stopTag); err != nil {
		b.Fatal(err)
	}
	p.wg.Wait()
	for _, d := range p.devs {
		d.Close()
	}
}

// roundTrips drives b.N full-API round trips of count elements of dt.
func roundTrips(b *testing.B, eagerLimit, count int, dt core.Datatype, bytes int) {
	b.Helper()
	p := newEchoPair(b, eagerLimit, count, dt)
	buf := dt.Alloc(count)
	b.SetBytes(int64(2 * bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.w0.Send(buf, 0, count, dt, 1, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := p.w0.Recv(buf, 0, count, dt, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	p.close(b)
}

// BenchmarkF1Transport measures the raw channel-transport round trip —
// the bottom layer of Figure 1.
func BenchmarkF1Transport(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			eps := transport.NewChanMesh(2)
			sig0 := make(chan []byte, 1)
			sig1 := make(chan []byte, 1)
			eps[0].SetHandler(func(src int, frame []byte) { sig0 <- frame })
			eps[1].SetHandler(func(src int, frame []byte) { sig1 <- frame })
			for _, ep := range eps {
				if err := ep.Start(); err != nil {
					b.Fatal(err)
				}
			}
			defer eps[0].Close()
			defer eps[1].Close()
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					frame, ok := <-sig1
					if !ok {
						return
					}
					if eps[1].Send(0, frame) != nil {
						return
					}
				}
			}()
			frame := wire.NewFrame(&wire.Header{Kind: wire.KindEager, Len: int32(size)}, make([]byte, size))
			b.SetBytes(int64(2 * size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eps[0].Send(1, frame); err != nil {
					b.Fatal(err)
				}
				<-sig0
			}
			b.StopTimer()
			close(sig1)
			<-done
		})
	}
}

// BenchmarkF1Device measures the device-level (isend/irecv/matching)
// round trip — the MPJ device layer of Figure 1.
func BenchmarkF1Device(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			benchDevicePingPong(b, size, -1, device.ModeStandard)
		})
	}
}

func benchDevicePingPong(b *testing.B, size, eagerLimit int, mode device.Mode) {
	b.Helper()
	eps := transport.NewChanMesh(2)
	benchDevicePingPongOver(b, eps[0], eps[1], size, eagerLimit, mode)
}

func benchDevicePingPongOver(b *testing.B, t0, t1 transport.Transport, size, eagerLimit int, mode device.Mode) {
	b.Helper()
	var opts []device.Option
	if eagerLimit >= 0 {
		opts = append(opts, device.WithEagerLimit(eagerLimit))
	}
	d0, err := device.Open(t0, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer d0.Close()
	d1, err := device.Open(t1, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer d1.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, size)
		for {
			rr, err := d1.Irecv(buf, 0, 0, 0)
			if err != nil {
				return
			}
			st, err := rr.Wait()
			if err != nil || st.Count == 0 {
				return
			}
			sr, err := d1.Isend(buf, 0, 0, 0, mode)
			if err != nil {
				return
			}
			if _, err := sr.Wait(); err != nil {
				return
			}
		}
	}()

	msg := make([]byte, size)
	buf := make([]byte, size)
	b.SetBytes(int64(2 * size))
	b.ReportAllocs() // the eager path is pooled; regressions show up here
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := d0.Irecv(buf, 1, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		sr, err := d0.Isend(msg, 1, 0, 0, mode)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sr.Wait(); err != nil {
			b.Fatal(err)
		}
		if _, err := rr.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Zero-length message ends the echo loop.
	sr, err := d0.Isend(nil, 1, 0, 0, device.ModeStandard)
	if err == nil {
		_, _ = sr.Wait()
	}
	<-done
}

// BenchmarkF1ByteAPI measures the full MPJ API round trip with BYTE data.
func BenchmarkF1ByteAPI(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			roundTrips(b, -1, size, core.Byte, size)
		})
	}
}

// BenchmarkF1DoubleAPI measures the full API round trip with DOUBLE data
// (adds datatype encode/decode to F1ByteAPI).
func BenchmarkF1DoubleAPI(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			roundTrips(b, -1, size/8, core.Double, size)
		})
	}
}

// BenchmarkF1ObjectAPI measures the full API round trip with OBJECT
// (gob-serialized) data — the top of the F1 stack.
func BenchmarkF1ObjectAPI(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			count := size / 8
			buf := make([]any, count)
			for i := range buf {
				buf[i] = float64(i)
			}
			p := newEchoPair(b, -1, count, core.Object)
			b.SetBytes(int64(2 * size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.w0.Send(buf, 0, count, core.Object, 1, 0); err != nil {
					b.Fatal(err)
				}
				if _, err := p.w0.Recv(buf, 0, count, core.Object, 1, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			p.close(b)
		})
	}
}

// BenchmarkPPDevices runs the device-level round trip over each
// selectable device (cmd/mpjbench -exp pingpong prints the same comparison
// as a table). For co-located ranks, hyb should match chan within noise;
// tcp shows the loopback-socket tax the hybrid device avoids.
func BenchmarkPPDevices(b *testing.B) {
	for _, name := range []transport.DeviceName{transport.DeviceChan, transport.DeviceHyb, transport.DeviceTCP} {
		name := name
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("dev=%s/size=%d", name, size), func(b *testing.B) {
				t0, t1, cleanup, err := bench.TransportPair(name)
				if err != nil {
					b.Fatal(err)
				}
				defer cleanup()
				benchDevicePingPongOver(b, t0, t1, size, -1, device.ModeStandard)
			})
		}
	}
}

// BenchmarkE1Eager forces the eager protocol at every size.
func BenchmarkE1Eager(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			benchDevicePingPong(b, size, 1<<30, device.ModeStandard)
		})
	}
}

// BenchmarkE1Rendezvous forces the rendezvous protocol at every size.
func BenchmarkE1Rendezvous(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			benchDevicePingPong(b, size, 0, device.ModeStandard)
		})
	}
}

// BenchmarkE2Modes measures the four send modes at 1 KiB.
func BenchmarkE2Modes(b *testing.B) {
	const size = 1024
	for _, mode := range []string{"standard", "sync", "ready", "buffered"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			p := newEchoPair(b, -1, size, core.Byte)
			if mode == "buffered" {
				if err := p.w0.BufferAttach(4 * size); err != nil {
					b.Fatal(err)
				}
				defer p.w0.BufferDetach()
			}
			buf := make([]byte, size)
			send := map[string]func() error{
				"standard": func() error { return p.w0.Send(buf, 0, size, core.Byte, 1, 0) },
				"sync":     func() error { return p.w0.Ssend(buf, 0, size, core.Byte, 1, 0) },
				"ready":    func() error { return p.w0.Rsend(buf, 0, size, core.Byte, 1, 0) },
				"buffered": func() error { return p.w0.Bsend(buf, 0, size, core.Byte, 1, 0) },
			}[mode]
			b.SetBytes(2 * size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := send(); err != nil {
					b.Fatal(err)
				}
				if _, err := p.w0.Recv(buf, 0, size, core.Byte, 1, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			p.close(b)
		})
	}
}

// collSession runs np ranks; rank 0 executes the benchmark loop while the
// others mirror it exactly b.N times. mkOp builds one rank-local closure
// per rank so buffers are never shared between rank goroutines.
func collSession(b *testing.B, np int, mkOp func(w *core.Comm) func() error) {
	b.Helper()
	eps := transport.NewChanMesh(np)
	devs := make([]*device.Device, np)
	worlds := make([]*core.Comm, np)
	for i := 0; i < np; i++ {
		d, err := device.Open(eps[i])
		if err != nil {
			b.Fatal(err)
		}
		devs[i] = d
		w, err := core.NewWorld(d)
		if err != nil {
			b.Fatal(err)
		}
		worlds[i] = w
	}
	var wg sync.WaitGroup
	for r := 1; r < np; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			op := mkOp(worlds[r])
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					return
				}
			}
		}()
	}
	op := mkOp(worlds[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	wg.Wait()
	for _, d := range devs {
		d.Close()
	}
}

// BenchmarkE4Collectives measures the core collectives at np=8 with a
// 1 KiB payload.
func BenchmarkE4Collectives(b *testing.B) {
	const np = 8
	const count = 128 // float64 elements = 1 KiB
	b.Run("barrier", func(b *testing.B) {
		collSession(b, np, func(w *core.Comm) func() error { return w.Barrier })
	})
	b.Run("bcast", func(b *testing.B) {
		collSession(b, np, func(w *core.Comm) func() error {
			buf := make([]float64, count)
			return func() error { return w.Bcast(buf, 0, count, core.Double, 0) }
		})
	})
	b.Run("allreduce", func(b *testing.B) {
		collSession(b, np, func(w *core.Comm) func() error {
			in := make([]float64, count)
			out := make([]float64, count)
			return func() error { return w.Allreduce(in, 0, out, 0, count, core.Double, core.SumOp) }
		})
	})
	b.Run("allgather", func(b *testing.B) {
		collSession(b, np, func(w *core.Comm) func() error {
			in := make([]float64, count)
			out := make([]float64, count*np)
			return func() error { return w.Allgather(in, 0, count, core.Double, out, 0, count, core.Double) }
		})
	})
	b.Run("alltoall", func(b *testing.B) {
		collSession(b, np, func(w *core.Comm) func() error {
			in := make([]float64, count*np)
			out := make([]float64, count*np)
			return func() error { return w.Alltoall(in, 0, count, core.Double, out, 0, count, core.Double) }
		})
	})
}

// BenchmarkE7Serialization compares DOUBLE and OBJECT transport of the
// same 1024 float64s.
func BenchmarkE7Serialization(b *testing.B) {
	const count = 1024
	b.Run("double", func(b *testing.B) {
		roundTrips(b, -1, count, core.Double, count*8)
	})
	b.Run("object", func(b *testing.B) {
		buf := make([]any, count)
		for i := range buf {
			buf[i] = float64(i)
		}
		p := newEchoPair(b, -1, count, core.Object)
		b.SetBytes(2 * count * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.w0.Send(buf, 0, count, core.Object, 1, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := p.w0.Recv(buf, 0, count, core.Object, 1, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		p.close(b)
	})
}

// BenchmarkA1Allreduce compares the two allreduce algorithms at np=4.
func BenchmarkA1Allreduce(b *testing.B) {
	const np = 4
	const count = 2048
	for _, alg := range []struct {
		name string
		alg  core.AllreduceAlgorithm
	}{
		{"tree+bcast", core.AllreduceTreeBcast},
		{"recursive-doubling", core.AllreduceRecursiveDoubling},
	} {
		alg := alg
		b.Run(alg.name, func(b *testing.B) {
			collSession(b, np, func(w *core.Comm) func() error {
				in := make([]float64, count)
				out := make([]float64, count)
				return func() error {
					return w.AllreduceWith(alg.alg, in, 0, out, 0, count, core.Double, core.SumOp)
				}
			})
		})
	}
}

// BenchmarkA2EagerLimit sweeps the eager threshold at a 64 KiB message.
func BenchmarkA2EagerLimit(b *testing.B) {
	const size = 64 << 10
	for _, limit := range []int{1 << 10, 16 << 10, 128 << 10} {
		limit := limit
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			benchDevicePingPong(b, size, limit, device.ModeStandard)
		})
	}
}

// BenchmarkF2JobLifecycle runs one complete daemon-mediated job (4
// in-process slaves over real TCP meshes) per iteration — the Figure 2
// scenario end to end.
func BenchmarkF2JobLifecycle(b *testing.B) {
	reg, err := lookup.NewRegistrar(0)
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	d, err := daemon.New(daemon.WithSpawner(NewFuncSpawner()), daemon.WithLogger(benchQuietLogger()))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	if err := d.Announce([]string{reg.Addr()}, time.Minute); err != nil {
		b.Fatal(err)
	}
	Register("bench-noop", func(w *Comm) error { return w.Barrier() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := Run(JobConfig{
			NP:       4,
			App:      "bench-noop",
			Locators: []string{reg.Addr()},
			LeaseDur: 5 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
