package mpj

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpj/internal/core"
	"mpj/internal/device"
	"mpj/internal/transport"
)

// typedJobSeq hands out process-unique job ids for the in-process hybrid
// meshes these tests build, so repeated runs never collide in the hybrid
// device's process-local hub.
var typedJobSeq atomic.Uint64

// runWorlds executes fn concurrently on np ranks connected by an
// in-process mesh of the named device (chan or hyb), mirroring the
// distributed runtime. It fails the test if any rank errors or wedges.
func runWorlds(t *testing.T, np int, dev string, fn func(w *Comm) error) {
	t.Helper()
	eps := make([]transport.Transport, np)
	switch dev {
	case "chan":
		for i, e := range transport.NewChanMesh(np) {
			eps[i] = e
		}
	case "hyb":
		loc := transport.ProcessLocality()
		locs := make([]string, np)
		for i := range locs {
			locs[i] = loc
		}
		jobID := 0x7e57<<48 | typedJobSeq.Add(1)
		for i := range eps {
			h, err := transport.NewHybTransport(transport.HybConfig{Rank: i, JobID: jobID, Locs: locs})
			if err != nil {
				t.Fatalf("hyb endpoint %d: %v", i, err)
			}
			eps[i] = h
		}
	default:
		t.Fatalf("unknown device %q", dev)
	}

	errs := make([]error, np)
	var wg sync.WaitGroup
	for i := 0; i < np; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := device.Open(eps[i])
			if err != nil {
				errs[i] = fmt.Errorf("open device: %w", err)
				return
			}
			defer d.Close()
			w, err := core.NewWorld(d)
			if err != nil {
				errs[i] = fmt.Errorf("new world: %w", err)
				return
			}
			if err := fn(w); err != nil {
				errs[i] = err
				return
			}
			errs[i] = w.Barrier()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("job wedged: ranks did not finish within 120s")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

// checkTypedEquiv runs the same operations through the typed facade and
// the classic Datatype facade and demands byte-identical results: a ring
// exchange, Bcast, Gather, Allgather, Alltoall, Reduce, Allreduce (plus
// its non-blocking typed form), and Scan.
func checkTypedEquiv[T Scalar](w *Comm, count, root int, op ReduceOp[T], gen func(rank, i int) T) error {
	size, rank := w.Size(), w.Rank()
	dt := DatatypeOf[T]()
	cop := op.Op()
	src := make([]T, count)
	for i := range src {
		src[i] = gen(rank, i)
	}
	mismatch := func(what string, typed, classic any) error {
		if !reflect.DeepEqual(typed, classic) {
			return fmt.Errorf("%s: typed %v != classic %v (np=%d count=%d root=%d op=%s)",
				what, typed, classic, size, count, root, cop.Name())
		}
		return nil
	}

	// Point-to-point ring, both facades.
	right, left := (rank+1)%size, (rank-1+size)%size
	tGot, cGot := make([]T, count), make([]T, count)
	sr, err := Isend(w, src, right, 11)
	if err != nil {
		return err
	}
	if _, err := Recv(w, tGot, left, 11); err != nil {
		return err
	}
	if _, err := sr.Wait(); err != nil {
		return err
	}
	cr, err := w.Isend(src, 0, count, dt, right, 12)
	if err != nil {
		return err
	}
	if _, err := w.Recv(cGot, 0, count, dt, left, 12); err != nil {
		return err
	}
	if _, err := cr.Wait(); err != nil {
		return err
	}
	if err := mismatch("ring", tGot, cGot); err != nil {
		return err
	}

	// Bcast.
	tB := append([]T(nil), src...)
	cB := append([]T(nil), src...)
	if err := Bcast(w, tB, root); err != nil {
		return err
	}
	if err := w.Bcast(cB, 0, count, dt, root); err != nil {
		return err
	}
	if err := mismatch("bcast", tB, cB); err != nil {
		return err
	}

	// Gather to root.
	var tG, cG []T
	if rank == root {
		tG, cG = make([]T, size*count), make([]T, size*count)
	}
	if err := Gather(w, src, tG, root); err != nil {
		return err
	}
	if err := w.Gather(src, 0, count, dt, cG, 0, count, dt, root); err != nil {
		return err
	}
	if err := mismatch("gather", tG, cG); err != nil {
		return err
	}

	// Allgather.
	tAG, cAG := make([]T, size*count), make([]T, size*count)
	if err := Allgather(w, src, tAG); err != nil {
		return err
	}
	if err := w.Allgather(src, 0, count, dt, cAG, 0, count, dt); err != nil {
		return err
	}
	if err := mismatch("allgather", tAG, cAG); err != nil {
		return err
	}

	// Alltoall (one count-element block per peer).
	sA := make([]T, size*count)
	for i := range sA {
		sA[i] = gen(rank, i+7)
	}
	tA, cA := make([]T, size*count), make([]T, size*count)
	if err := Alltoall(w, sA, tA); err != nil {
		return err
	}
	if err := w.Alltoall(sA, 0, count, dt, cA, 0, count, dt); err != nil {
		return err
	}
	if err := mismatch("alltoall", tA, cA); err != nil {
		return err
	}

	// Reduce to root.
	var tR, cR []T
	if rank == root {
		tR, cR = make([]T, count), make([]T, count)
	}
	if err := Reduce(w, src, tR, op, root); err != nil {
		return err
	}
	if err := w.Reduce(src, 0, cR, 0, count, dt, cop, root); err != nil {
		return err
	}
	if err := mismatch("reduce", tR, cR); err != nil {
		return err
	}

	// Allreduce, blocking and non-blocking typed against blocking classic.
	tAR, cAR, tIAR := make([]T, count), make([]T, count), make([]T, count)
	if err := Allreduce(w, src, tAR, op); err != nil {
		return err
	}
	if err := w.Allreduce(src, 0, cAR, 0, count, dt, cop); err != nil {
		return err
	}
	if err := mismatch("allreduce", tAR, cAR); err != nil {
		return err
	}
	req, err := Iallreduce(w, src, tIAR, op)
	if err != nil {
		return err
	}
	if _, err := req.Wait(); err != nil {
		return err
	}
	if err := mismatch("iallreduce", tIAR, cAR); err != nil {
		return err
	}

	// Scan (inclusive prefix).
	tS, cS := make([]T, count), make([]T, count)
	if err := Scan(w, src, tS, op); err != nil {
		return err
	}
	if err := w.Scan(src, 0, cS, 0, count, dt, cop); err != nil {
		return err
	}
	return mismatch("scan", tS, cS)
}

// TestTypedDatatypeEquivalenceProperty is the two-facade equivalence
// property: over randomized np (including non-powers-of-two), count, root,
// reduction op, collective algorithm family and pipeline segment size
// (including values that do not divide the payload), on both the chan and
// hyb devices, every typed operation must produce results byte-identical
// to its Datatype-facade counterpart (the facades share one algorithm
// source, so any divergence is a fast-path bug). The last two iterations
// push the payload past the eager limit and past the large-message
// algorithm threshold to cover the rendezvous protocol and the
// segmented/ring schedules.
func TestTypedDatatypeEquivalenceProperty(t *testing.T) {
	intOps := []ReduceOp[int64]{Sum[int64](), Max[int64](), BXor[int64]()}
	floatOps := []ReduceOp[float64]{Sum[float64](), Min[float64](), Prod[float64]()}
	algs := []CollAlg{CollAlgAuto, CollAlgClassic, CollAlgSegmented, CollAlgRing}

	for _, dev := range []string{"chan", "hyb"} {
		t.Run(dev, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xC0FFEE))
			const iters = 7
			for it := 0; it < iters; it++ {
				np := 2 + rng.Intn(4)
				count := rng.Intn(70)
				switch it {
				case iters - 2:
					count = 2600 // 20.8 KiB of int64: crosses the eager limit
				case iters - 1:
					np = 5
					count = 11<<10 + 3 // 88 KiB: crosses the algorithm threshold, odd length
				}
				root := rng.Intn(np)
				iop := intOps[rng.Intn(len(intOps))]
				fop := floatOps[rng.Intn(len(floatOps))]
				alg := algs[rng.Intn(len(algs))]
				seg := 1 + rng.Intn(48<<10)
				seed := rng.Int63()
				runWorlds(t, np, dev, func(w *Comm) error {
					w.SetCollAlg(alg)
					w.SetCollSegSize(seg)
					if err := checkTypedEquiv(w, count, root, iop, func(rank, i int) int64 {
						return seed%1000 + int64(rank*31+i)
					}); err != nil {
						return err
					}
					return checkTypedEquiv(w, count, root, fop, func(rank, i int) float64 {
						return 1 + float64((seed+int64(rank*17+i))%97)/8
					})
				})
			}
		})
	}
}

// TestTypedSendrecv checks the typed Sendrecv wrapper: a ring shift with
// differing send/receive element types, against locally computed values.
func TestTypedSendrecv(t *testing.T) {
	runWorlds(t, 4, "chan", func(w *Comm) error {
		right := (w.Rank() + 1) % w.Size()
		left := (w.Rank() - 1 + w.Size()) % w.Size()
		out := []int32{int32(w.Rank()), int32(w.Rank() * 2)}
		in := make([]int32, 2)
		st, err := Sendrecv(w, out, right, 3, in, left, 3)
		if err != nil {
			return err
		}
		if n := st.GetCount(INT); n != 2 {
			return fmt.Errorf("sendrecv status count = %d, want 2", n)
		}
		if in[0] != int32(left) || in[1] != int32(left*2) {
			return fmt.Errorf("sendrecv got %v from %d", in, left)
		}
		// Genuinely mixed element types (S != R): send one int32, receive
		// its little-endian wire bytes into a []byte.
		bo := []int32{0x01020304 + int32(w.Rank())}
		bi := make([]byte, 4)
		if _, err := Sendrecv(w, bo, right, 4, bi, left, 4); err != nil {
			return err
		}
		want := []byte{byte(4 + left), 3, 2, 1}
		if !reflect.DeepEqual(bi, want) {
			return fmt.Errorf("sendrecv mixed got %v, want %v", bi, want)
		}
		return nil
	})
}

// tvSizes derives per-rank block sizes from rng, forcing some to zero.
func tvSizes(rng *rand.Rand, np, maxCount int) []int {
	s := make([]int, np)
	for i := range s {
		if rng.Intn(4) != 0 {
			s[i] = 1 + rng.Intn(maxCount)
		}
	}
	return s
}

// tvDispls lays blocks out in a random permutation with random gaps and
// returns the displacements plus the spanned element count.
func tvDispls(rng *rand.Rand, sizes []int) ([]int, int) {
	displs := make([]int, len(sizes))
	cur := 0
	for _, r := range rng.Perm(len(sizes)) {
		cur += rng.Intn(3)
		displs[r] = cur
		cur += sizes[r]
	}
	return displs, cur + rng.Intn(3)
}

// checkTypedVEquiv runs every V collective through the typed count-slice
// surface and the classic Datatype surface with identical inputs and
// demands byte-identical results, for both the blocking and the
// non-blocking forms. The facades share one schedule source, so any
// divergence is a fast-path bug.
func checkTypedVEquiv[T Scalar](w *Comm, seed int64, maxCount int, op ReduceOp[T], gen func(rank, i int) T) error {
	np, me := w.Size(), w.Rank()
	dt := DatatypeOf[T]()
	rng := rand.New(rand.NewSource(seed))
	root := rng.Intn(np)
	mismatch := func(what string, typed, classic any) error {
		if !reflect.DeepEqual(typed, classic) {
			return fmt.Errorf("%s: typed %v != classic %v (np=%d root=%d seed=%d)",
				what, typed, classic, np, root, seed)
		}
		return nil
	}
	wait := func(what string, r *CollRequest, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", what, err)
		}
		if _, err := r.Wait(); err != nil {
			return fmt.Errorf("%s: %w", what, err)
		}
		return nil
	}

	// Gatherv / Igatherv.
	gc := tvSizes(rng, np, maxCount)
	gd, gspan := tvDispls(rng, gc)
	gs := make([]T, gc[me])
	for i := range gs {
		gs[i] = gen(me, i)
	}
	var tG, cG, iG []T
	if me == root {
		tG, cG, iG = make([]T, gspan), make([]T, gspan), make([]T, gspan)
	}
	if err := Gatherv(w, gs, tG, gc, gd, root); err != nil {
		return fmt.Errorf("gatherv typed: %w", err)
	}
	if err := w.Gatherv(gs, 0, gc[me], dt, cG, 0, gc, gd, dt, root); err != nil {
		return fmt.Errorf("gatherv classic: %w", err)
	}
	if err := mismatch("gatherv", tG, cG); err != nil {
		return err
	}
	gr, err := Igatherv(w, gs, iG, gc, gd, root)
	if err := wait("igatherv", gr, err); err != nil {
		return err
	}
	if err := mismatch("igatherv", iG, cG); err != nil {
		return err
	}

	// Scatterv / Iscatterv.
	sc := tvSizes(rng, np, maxCount)
	sd, sspan := tvDispls(rng, sc)
	var src []T
	if me == root {
		src = make([]T, sspan)
		for i := range src {
			src[i] = gen(me, i+3)
		}
	}
	tS, cS, iS := make([]T, sc[me]), make([]T, sc[me]), make([]T, sc[me])
	if err := Scatterv(w, src, sc, sd, tS, root); err != nil {
		return fmt.Errorf("scatterv typed: %w", err)
	}
	if err := w.Scatterv(src, 0, sc, sd, dt, cS, 0, sc[me], dt, root); err != nil {
		return fmt.Errorf("scatterv classic: %w", err)
	}
	if err := mismatch("scatterv", tS, cS); err != nil {
		return err
	}
	sr, err := Iscatterv(w, src, sc, sd, iS, root)
	if err := wait("iscatterv", sr, err); err != nil {
		return err
	}
	if err := mismatch("iscatterv", iS, cS); err != nil {
		return err
	}

	// Allgatherv / Iallgatherv.
	ac := tvSizes(rng, np, maxCount)
	ad, aspan := tvDispls(rng, ac)
	as := make([]T, ac[me])
	for i := range as {
		as[i] = gen(me, i+11)
	}
	tA, cA, iA := make([]T, aspan), make([]T, aspan), make([]T, aspan)
	if err := Allgatherv(w, as, tA, ac, ad); err != nil {
		return fmt.Errorf("allgatherv typed: %w", err)
	}
	if err := w.Allgatherv(as, 0, ac[me], dt, cA, 0, ac, ad, dt); err != nil {
		return fmt.Errorf("allgatherv classic: %w", err)
	}
	if err := mismatch("allgatherv", tA, cA); err != nil {
		return err
	}
	ar, err := Iallgatherv(w, as, iA, ac, ad)
	if err := wait("iallgatherv", ar, err); err != nil {
		return err
	}
	if err := mismatch("iallgatherv", iA, cA); err != nil {
		return err
	}

	// Alltoallv / Ialltoallv over a pairwise-matched matrix.
	M := make([][]int, np)
	for s := range M {
		M[s] = tvSizes(rng, np, maxCount)
	}
	rcnt := make([]int, np)
	for s := 0; s < np; s++ {
		rcnt[s] = M[s][me]
	}
	// Every rank derives every rank's send layout in the same order, so
	// the shared rng stream stays aligned; only its own row is kept.
	var sdis []int
	sspanV := 0
	for r := 0; r < np; r++ {
		d, sp := tvDispls(rng, M[r])
		if r == me {
			sdis, sspanV = d, sp
		}
	}
	rdis, rspan := tvDispls(rng, rcnt)
	vs := make([]T, sspanV)
	for d := 0; d < np; d++ {
		for i := 0; i < M[me][d]; i++ {
			vs[sdis[d]+i] = gen(me*np+d, i)
		}
	}
	tV, cV, iV := make([]T, rspan), make([]T, rspan), make([]T, rspan)
	if err := Alltoallv(w, vs, M[me], sdis, tV, rcnt, rdis); err != nil {
		return fmt.Errorf("alltoallv typed: %w", err)
	}
	if err := w.Alltoallv(vs, 0, M[me], sdis, dt, cV, 0, rcnt, rdis, dt); err != nil {
		return fmt.Errorf("alltoallv classic: %w", err)
	}
	if err := mismatch("alltoallv", tV, cV); err != nil {
		return err
	}
	vr, err := Ialltoallv(w, vs, M[me], sdis, iV, rcnt, rdis)
	if err := wait("ialltoallv", vr, err); err != nil {
		return err
	}
	if err := mismatch("ialltoallv", iV, cV); err != nil {
		return err
	}

	// ReduceScatter / IreduceScatter.
	rsc := tvSizes(rng, np, maxCount)
	total := 0
	for _, n := range rsc {
		total += n
	}
	rin := make([]T, total)
	for i := range rin {
		rin[i] = gen(me, i+29)
	}
	tR, cR, iR := make([]T, rsc[me]), make([]T, rsc[me]), make([]T, rsc[me])
	if err := ReduceScatter(w, rin, tR, rsc, op); err != nil {
		return fmt.Errorf("reduce_scatter typed: %w", err)
	}
	if err := w.ReduceScatter(rin, 0, cR, 0, rsc, dt, op.Op()); err != nil {
		return fmt.Errorf("reduce_scatter classic: %w", err)
	}
	if err := mismatch("reduce_scatter", tR, cR); err != nil {
		return err
	}
	rr, err := IreduceScatter(w, rin, iR, rsc, op)
	if err := wait("ireduce_scatter", rr, err); err != nil {
		return err
	}
	return mismatch("ireduce_scatter", iR, cR)
}

// TestTypedVEquivalenceProperty is the two-facade equivalence property
// for the varying-count family: randomized np (incl. non-powers-of-two),
// per-rank counts (incl. zero-count ranks), permuted gapped
// displacements, algorithm family and segment size, on both devices. The
// last chan iteration pushes blocks past the large-message threshold to
// cover the window-ring and ring reduce-scatter schedules.
func TestTypedVEquivalenceProperty(t *testing.T) {
	algs := []CollAlg{CollAlgAuto, CollAlgClassic, CollAlgSegmented, CollAlgRing}
	for _, dev := range []string{"chan", "hyb"} {
		t.Run(dev, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xBEEF))
			iters := 5
			if dev == "hyb" {
				iters = 3
			}
			for it := 0; it < iters; it++ {
				np := 1 + rng.Intn(5)
				maxCount := 1 + rng.Intn(50)
				if dev == "chan" && it == iters-1 {
					np = 5
					maxCount = 9 << 10 // int64 blocks up to 72 KiB: past largeCollMin
				}
				alg := algs[rng.Intn(len(algs))]
				seg := 1 + rng.Intn(32<<10)
				seed := rng.Int63()
				runWorlds(t, np, dev, func(w *Comm) error {
					w.SetCollAlg(alg)
					w.SetCollSegSize(seg)
					if err := checkTypedVEquiv(w, seed, maxCount, Sum[int64](), func(rank, i int) int64 {
						return int64(rank*37+i)%97 - 20
					}); err != nil {
						return err
					}
					return checkTypedVEquiv(w, seed+1, maxCount, Min[float64](), func(rank, i int) float64 {
						return float64((rank*13+i)%83) / 4
					})
				})
			}
		})
	}
}

// TestPersistentCollectiveReuse drives the public persistent-collective
// surface end to end: commit an Allreduce and an Alltoallv once, then
// Start/Wait them several times with the input buffers mutated between
// activations — every activation must see the data of its own epoch.
// Finally, Free must fail an in-flight persistent activation (and any
// later Start) with ErrComm.
func TestPersistentCollectiveReuse(t *testing.T) {
	runWorlds(t, 3, "chan", func(w *Comm) error {
		np, me := w.Size(), w.Rank()
		n := 4
		in := make([]int64, n)
		out := make([]int64, n)
		par, err := w.CommitAllreduce(in, 0, out, 0, n, LONG, SUM)
		if err != nil {
			return err
		}
		// A symmetric block-size matrix keeps every send paired with a
		// matching receive (M[s][d] == M[d][s]); rank r uses row r for
		// both its send and its receive counts.
		M := make([][]int, np)
		for s := range M {
			M[s] = make([]int, np)
			for d := range M[s] {
				M[s][d] = (s + d) % 3
			}
		}
		prefix := func(row []int) ([]int, int) {
			p := make([]int, len(row))
			cur := 0
			for i, n := range row {
				p[i] = cur
				cur += n
			}
			return p, cur
		}
		counts := M[me]
		sdis, span := prefix(counts)
		rdis := sdis
		vs := make([]int64, span)
		vr := make([]int64, span)
		pv, err := w.CommitAlltoallv(vs, 0, counts, sdis, LONG, vr, 0, counts, rdis, LONG)
		if err != nil {
			return err
		}
		for epoch := 0; epoch < 4; epoch++ {
			for i := range in {
				in[i] = int64(epoch*100 + me*10 + i)
			}
			for i := range vs {
				vs[i] = int64(epoch*1000 + me*100 + i)
			}
			for i := range vr {
				vr[i] = -1
			}
			if err := par.Start(); err != nil {
				return err
			}
			if err := pv.Start(); err != nil {
				return err
			}
			if _, err := WaitAllRequests([]AnyRequest{par, pv}); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				var want int64
				for r := 0; r < np; r++ {
					want += int64(epoch*100 + r*10 + i)
				}
				if out[i] != want {
					return fmt.Errorf("epoch %d: allreduce[%d] = %d, want %d", epoch, i, out[i], want)
				}
			}
			// vr[rdis[s]:][:counts[s]] holds rank s's block for me, read
			// from s's vs at s's own send displacement for me.
			for s := 0; s < np; s++ {
				sd, _ := prefix(M[s])
				for i := 0; i < counts[s]; i++ {
					want := int64(epoch*1000 + s*100 + sd[me] + i)
					if vr[rdis[s]+i] != want {
						return fmt.Errorf("epoch %d: alltoallv from %d [%d] = %d, want %d",
							epoch, s, i, vr[rdis[s]+i], want)
					}
				}
			}
		}
		// Free fails an in-flight persistent activation with ErrComm.
		c, err := w.Dup()
		if err != nil {
			return err
		}
		var stuck *PcollRequest
		if me == 0 {
			if stuck, err = c.CommitAllreduce(in, 0, out, 0, n, LONG, SUM); err != nil {
				return err
			}
			if err := stuck.Start(); err != nil {
				return err
			}
		}
		c.Free()
		if me == 0 {
			if _, err := stuck.Wait(); !errors.Is(err, ErrComm) {
				return fmt.Errorf("wait after Free: got %v, want ErrComm", err)
			}
			if err := stuck.Start(); !errors.Is(err, ErrComm) {
				return fmt.Errorf("start after Free: got %v, want ErrComm", err)
			}
		}
		return nil
	})
}
