package mpj

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpj/internal/core"
	"mpj/internal/device"
	"mpj/internal/transport"
)

// typedJobSeq hands out process-unique job ids for the in-process hybrid
// meshes these tests build, so repeated runs never collide in the hybrid
// device's process-local hub.
var typedJobSeq atomic.Uint64

// runWorlds executes fn concurrently on np ranks connected by an
// in-process mesh of the named device (chan or hyb), mirroring the
// distributed runtime. It fails the test if any rank errors or wedges.
func runWorlds(t *testing.T, np int, dev string, fn func(w *Comm) error) {
	t.Helper()
	eps := make([]transport.Transport, np)
	switch dev {
	case "chan":
		for i, e := range transport.NewChanMesh(np) {
			eps[i] = e
		}
	case "hyb":
		loc := transport.ProcessLocality()
		locs := make([]string, np)
		for i := range locs {
			locs[i] = loc
		}
		jobID := 0x7e57<<48 | typedJobSeq.Add(1)
		for i := range eps {
			h, err := transport.NewHybTransport(transport.HybConfig{Rank: i, JobID: jobID, Locs: locs})
			if err != nil {
				t.Fatalf("hyb endpoint %d: %v", i, err)
			}
			eps[i] = h
		}
	default:
		t.Fatalf("unknown device %q", dev)
	}

	errs := make([]error, np)
	var wg sync.WaitGroup
	for i := 0; i < np; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := device.Open(eps[i])
			if err != nil {
				errs[i] = fmt.Errorf("open device: %w", err)
				return
			}
			defer d.Close()
			w, err := core.NewWorld(d)
			if err != nil {
				errs[i] = fmt.Errorf("new world: %w", err)
				return
			}
			if err := fn(w); err != nil {
				errs[i] = err
				return
			}
			errs[i] = w.Barrier()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("job wedged: ranks did not finish within 120s")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

// checkTypedEquiv runs the same operations through the typed facade and
// the classic Datatype facade and demands byte-identical results: a ring
// exchange, Bcast, Gather, Allgather, Alltoall, Reduce, Allreduce (plus
// its non-blocking typed form), and Scan.
func checkTypedEquiv[T Scalar](w *Comm, count, root int, op ReduceOp[T], gen func(rank, i int) T) error {
	size, rank := w.Size(), w.Rank()
	dt := DatatypeOf[T]()
	cop := op.Op()
	src := make([]T, count)
	for i := range src {
		src[i] = gen(rank, i)
	}
	mismatch := func(what string, typed, classic any) error {
		if !reflect.DeepEqual(typed, classic) {
			return fmt.Errorf("%s: typed %v != classic %v (np=%d count=%d root=%d op=%s)",
				what, typed, classic, size, count, root, cop.Name())
		}
		return nil
	}

	// Point-to-point ring, both facades.
	right, left := (rank+1)%size, (rank-1+size)%size
	tGot, cGot := make([]T, count), make([]T, count)
	sr, err := Isend(w, src, right, 11)
	if err != nil {
		return err
	}
	if _, err := Recv(w, tGot, left, 11); err != nil {
		return err
	}
	if _, err := sr.Wait(); err != nil {
		return err
	}
	cr, err := w.Isend(src, 0, count, dt, right, 12)
	if err != nil {
		return err
	}
	if _, err := w.Recv(cGot, 0, count, dt, left, 12); err != nil {
		return err
	}
	if _, err := cr.Wait(); err != nil {
		return err
	}
	if err := mismatch("ring", tGot, cGot); err != nil {
		return err
	}

	// Bcast.
	tB := append([]T(nil), src...)
	cB := append([]T(nil), src...)
	if err := Bcast(w, tB, root); err != nil {
		return err
	}
	if err := w.Bcast(cB, 0, count, dt, root); err != nil {
		return err
	}
	if err := mismatch("bcast", tB, cB); err != nil {
		return err
	}

	// Gather to root.
	var tG, cG []T
	if rank == root {
		tG, cG = make([]T, size*count), make([]T, size*count)
	}
	if err := Gather(w, src, tG, root); err != nil {
		return err
	}
	if err := w.Gather(src, 0, count, dt, cG, 0, count, dt, root); err != nil {
		return err
	}
	if err := mismatch("gather", tG, cG); err != nil {
		return err
	}

	// Allgather.
	tAG, cAG := make([]T, size*count), make([]T, size*count)
	if err := Allgather(w, src, tAG); err != nil {
		return err
	}
	if err := w.Allgather(src, 0, count, dt, cAG, 0, count, dt); err != nil {
		return err
	}
	if err := mismatch("allgather", tAG, cAG); err != nil {
		return err
	}

	// Alltoall (one count-element block per peer).
	sA := make([]T, size*count)
	for i := range sA {
		sA[i] = gen(rank, i+7)
	}
	tA, cA := make([]T, size*count), make([]T, size*count)
	if err := Alltoall(w, sA, tA); err != nil {
		return err
	}
	if err := w.Alltoall(sA, 0, count, dt, cA, 0, count, dt); err != nil {
		return err
	}
	if err := mismatch("alltoall", tA, cA); err != nil {
		return err
	}

	// Reduce to root.
	var tR, cR []T
	if rank == root {
		tR, cR = make([]T, count), make([]T, count)
	}
	if err := Reduce(w, src, tR, op, root); err != nil {
		return err
	}
	if err := w.Reduce(src, 0, cR, 0, count, dt, cop, root); err != nil {
		return err
	}
	if err := mismatch("reduce", tR, cR); err != nil {
		return err
	}

	// Allreduce, blocking and non-blocking typed against blocking classic.
	tAR, cAR, tIAR := make([]T, count), make([]T, count), make([]T, count)
	if err := Allreduce(w, src, tAR, op); err != nil {
		return err
	}
	if err := w.Allreduce(src, 0, cAR, 0, count, dt, cop); err != nil {
		return err
	}
	if err := mismatch("allreduce", tAR, cAR); err != nil {
		return err
	}
	req, err := Iallreduce(w, src, tIAR, op)
	if err != nil {
		return err
	}
	if _, err := req.Wait(); err != nil {
		return err
	}
	if err := mismatch("iallreduce", tIAR, cAR); err != nil {
		return err
	}

	// Scan (inclusive prefix).
	tS, cS := make([]T, count), make([]T, count)
	if err := Scan(w, src, tS, op); err != nil {
		return err
	}
	if err := w.Scan(src, 0, cS, 0, count, dt, cop); err != nil {
		return err
	}
	return mismatch("scan", tS, cS)
}

// TestTypedDatatypeEquivalenceProperty is the two-facade equivalence
// property: over randomized np (including non-powers-of-two), count, root,
// reduction op, collective algorithm family and pipeline segment size
// (including values that do not divide the payload), on both the chan and
// hyb devices, every typed operation must produce results byte-identical
// to its Datatype-facade counterpart (the facades share one algorithm
// source, so any divergence is a fast-path bug). The last two iterations
// push the payload past the eager limit and past the large-message
// algorithm threshold to cover the rendezvous protocol and the
// segmented/ring schedules.
func TestTypedDatatypeEquivalenceProperty(t *testing.T) {
	intOps := []ReduceOp[int64]{Sum[int64](), Max[int64](), BXor[int64]()}
	floatOps := []ReduceOp[float64]{Sum[float64](), Min[float64](), Prod[float64]()}
	algs := []CollAlg{CollAlgAuto, CollAlgClassic, CollAlgSegmented, CollAlgRing}

	for _, dev := range []string{"chan", "hyb"} {
		t.Run(dev, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xC0FFEE))
			const iters = 7
			for it := 0; it < iters; it++ {
				np := 2 + rng.Intn(4)
				count := rng.Intn(70)
				switch it {
				case iters - 2:
					count = 2600 // 20.8 KiB of int64: crosses the eager limit
				case iters - 1:
					np = 5
					count = 11<<10 + 3 // 88 KiB: crosses the algorithm threshold, odd length
				}
				root := rng.Intn(np)
				iop := intOps[rng.Intn(len(intOps))]
				fop := floatOps[rng.Intn(len(floatOps))]
				alg := algs[rng.Intn(len(algs))]
				seg := 1 + rng.Intn(48<<10)
				seed := rng.Int63()
				runWorlds(t, np, dev, func(w *Comm) error {
					w.SetCollAlg(alg)
					w.SetCollSegSize(seg)
					if err := checkTypedEquiv(w, count, root, iop, func(rank, i int) int64 {
						return seed%1000 + int64(rank*31+i)
					}); err != nil {
						return err
					}
					return checkTypedEquiv(w, count, root, fop, func(rank, i int) float64 {
						return 1 + float64((seed+int64(rank*17+i))%97)/8
					})
				})
			}
		})
	}
}

// TestTypedSendrecv checks the typed Sendrecv wrapper: a ring shift with
// differing send/receive element types, against locally computed values.
func TestTypedSendrecv(t *testing.T) {
	runWorlds(t, 4, "chan", func(w *Comm) error {
		right := (w.Rank() + 1) % w.Size()
		left := (w.Rank() - 1 + w.Size()) % w.Size()
		out := []int32{int32(w.Rank()), int32(w.Rank() * 2)}
		in := make([]int32, 2)
		st, err := Sendrecv(w, out, right, 3, in, left, 3)
		if err != nil {
			return err
		}
		if n := st.GetCount(INT); n != 2 {
			return fmt.Errorf("sendrecv status count = %d, want 2", n)
		}
		if in[0] != int32(left) || in[1] != int32(left*2) {
			return fmt.Errorf("sendrecv got %v from %d", in, left)
		}
		// Genuinely mixed element types (S != R): send one int32, receive
		// its little-endian wire bytes into a []byte.
		bo := []int32{0x01020304 + int32(w.Rank())}
		bi := make([]byte, 4)
		if _, err := Sendrecv(w, bo, right, 4, bi, left, 4); err != nil {
			return err
		}
		want := []byte{byte(4 + left), 3, 2, 1}
		if !reflect.DeepEqual(bi, want) {
			return fmt.Errorf("sendrecv mixed got %v, want %v", bi, want)
		}
		return nil
	})
}
